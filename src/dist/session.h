// Persistent worker sessions: the protocol and both ends of the pipe.
//
// PR 4's orchestrator spawned one `cicmon <sweep> --shard I/N` process per
// work item, so every item paid a process start-up and — for campaigns —
// a full golden run before doing any monitored work. A persistent session
// amortises both: the orchestrator spawns `cicmon worker <sweep> ...` once
// per worker slot and shard assignments stream over the worker's stdin with
// completed-artifact acks coming back over its stdout. Protocol v2 goes one
// step further: the orchestrator has already derived the golden state (or
// loaded it from the --golden-cache), so it *ships* it to each worker over
// the wire, and the worker skips even its one golden run — the measured
// residual of the v1 dispatch tax.
//
// The conversation, as length/checksum-framed records (support/wire.h):
//
//   worker  -> orchestrator   hello        {protocol, sweep, golden_key}
//   orchestrator -> worker    golden_offer {key, bytes, chunks}
//   worker  -> orchestrator   golden_ack   {accept}
//   orchestrator -> worker    <chunks> binary cicmon-chunk frames (if accepted)
//   worker  -> orchestrator   ready        {sweep, cells, params, golden}
//   orchestrator -> worker    assign       {shard, shard_count, out, force}
//   worker  -> orchestrator   done         {shard, shard_count, out, reused, wall_ms}
//                         or  error        {shard, shard_count, message}
//   orchestrator -> worker    shutdown     {}     (or just EOF on stdin)
//
// The handshake is split in two because deriving a campaign's SweepSpec IS
// the golden run: the hello carries only what the worker knows before paying
// it (the sweep name and its canonical golden key, fault/golden_ser.h), and
// the ready record carries the derived identity (cell count, every
// parameter), validated against the orchestrator's own spec exactly the way
// the v1 hello was — a worker built from skewed flags or a different binary
// fails before any shard is wasted on it.
//
// Golden shipping is strictly best-effort: a key mismatch, an empty offer,
// or a shipment that fails its checksums downgrades the worker to local
// derivation (golden: "derived" in the ready record) — never an error. The
// trust rules stay PR 5's: any malformed frame, unexpected record, EOF
// mid-record, or deadline overrun kills the whole session, because after a
// protocol violation there is no way to know what the worker actually did —
// the in-flight shard is re-enqueued through the ordinary retry budget and
// a fresh session takes the slot. A worker that dies mid-golden-chunk is
// the same case seen from the other side: the orchestrator's chunk write
// fails, the session is torn down, and the handshake-failure budget bounds
// how often that can repeat.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dist/work_queue.h"
#include "exp/sweep.h"
#include "support/subprocess.h"
#include "support/wire.h"

namespace cicmon::dist {

// Message-content version, carried in the hello record. v2 split the
// handshake into hello/ready around the golden-state exchange; the framing
// has its own version token (support::kWireMagic).
inline constexpr std::uint64_t kSessionProtocolVersion = 2;

// One decoded protocol record. Which fields are meaningful depends on type.
struct SessionMessage {
  enum class Type : std::uint8_t {
    kHello,
    kGoldenOffer,
    kGoldenAck,
    kReady,
    kAssign,
    kDone,
    kError,
    kShutdown,
  };

  Type type = Type::kShutdown;
  // hello
  std::uint64_t protocol = 0;
  std::string sweep;          // hello / ready
  std::string golden_key;     // hello; "" when the sweep ships no golden state
  // golden_offer
  std::string offer_key;      // "" = nothing to ship
  std::uint64_t golden_bytes = 0;
  std::uint64_t golden_chunks = 0;
  // golden_ack
  bool accept = false;
  // ready
  exp::SweepParams params;
  std::uint64_t cells = 0;
  std::string golden_source;  // "shipped" / "cached" / "derived" / ""
  // assign / done / error
  exp::Shard shard;
  std::string artifact_path;  // assign / done
  bool force = false;         // assign
  bool reused = false;        // done
  std::uint64_t wall_ms = 0;  // done: worker-measured shard wall clock
  std::string message;        // error
  // done: the worker's obs counter increments for this assignment, sorted by
  // name. Additive v2 field — absent in records from older peers (decoded as
  // empty) and ignored by older decoders.
  std::vector<std::pair<std::string, std::uint64_t>> metrics;
};

// Record encoders (payloads; wrap with support::wire_frame to transmit).
std::string encode_hello(const std::string& sweep, const std::string& golden_key);
std::string encode_golden_offer(const std::string& key, std::uint64_t bytes,
                                std::uint64_t chunks);
std::string encode_golden_ack(bool accept);
std::string encode_ready(const exp::SweepSpec& spec, const std::string& golden_source);
std::string encode_assign(const exp::Shard& shard, const std::string& out, bool force);
std::string encode_done(const exp::Shard& shard, const std::string& out, bool reused,
                        std::uint64_t wall_ms,
                        const std::vector<std::pair<std::string, std::uint64_t>>& metrics = {});
std::string encode_session_error(const exp::Shard& shard, const std::string& message);
std::string encode_shutdown();

// Parses and structurally validates one record payload (known type, required
// fields, shard bounds). Throws CicError describing the violation.
SessionMessage decode_session_message(std::string_view payload);

// Empty when `hello` comes from a protocol-compatible worker for the same
// sweep; otherwise the reason the handshake must be rejected. Deliberately
// does NOT compare golden keys — key skew downgrades shipping, it does not
// reject the worker.
std::string hello_mismatch(const SessionMessage& hello, const exp::SweepSpec& spec);

// Empty when `ready` reports exactly `spec`'s derived identity (name, cell
// count, every parameter); otherwise the rejection reason. The v1 hello
// check, moved to where the data now exists.
std::string ready_mismatch(const SessionMessage& ready, const exp::SweepSpec& spec);

// Golden-state shipment, prepared once per dispatch and offered to every
// session: the canonical key, the blob size, and the chunk sequence
// pre-wrapped as wire frames (support::chunk_payloads over the encoded
// cicmon-golden-v1 blob).
struct GoldenShipment {
  std::string key;
  std::uint64_t bytes = 0;
  std::vector<std::string> frames;
  bool empty() const { return key.empty() || frames.empty(); }
};
GoldenShipment make_golden_shipment(std::string key, std::string_view blob);

// --- worker side ---------------------------------------------------------

// What `cicmon worker` serves. The sweep's *identity* is known before any
// derivation (the light hello); the full SweepSpec is derived only after the
// golden exchange, so an accepted shipment can spare the derivation cost.
struct WorkerSweepSource {
  std::string sweep;       // sweep name, sent in the hello
  std::string golden_key;  // canonical golden key; "" = nothing to accept
  // Derives the full spec. `shipped` is a checksum-valid golden blob when
  // one was accepted over the wire, null otherwise; implementations fall
  // back to local derivation when the blob fails to decode or import. On
  // return, `golden_source` (when non-null) is set to how golden state was
  // obtained: "shipped", "cached", "derived", or "" for sweeps without one.
  std::function<exp::SweepSpec(const std::string* shipped, std::string* golden_source)>
      derive;
};

// Serves shard assignments over this process's stdin/stdout until a shutdown
// record or EOF; returns the process exit code. stdout belongs to the
// protocol — diagnostics go to stderr. A CicError while running a shard is
// reported as an error record and the session keeps serving (the
// orchestrator owns the retry policy); a malformed inbound frame is fatal,
// mirroring the orchestrator's own trust rules. A corrupt golden shipment is
// the one exception: it is reported on stderr and downgraded to local
// derivation, because the artifact checks — not the shipment — protect the
// results.
//
// Fault-injection hooks for tests and CI (all keyed on
// CICMON_WORKER_FLAKY_MARKER=DIR, with O_EXCL markers so only the first
// worker to arrive sabotages and every retry behaves):
//  * CICMON_WORKER_FLAKY=I/N — the first assignment of shard I/N writes a
//    deliberately truncated done record and raises SIGKILL: a worker dying
//    mid-record, made deterministic.
//  * CICMON_WORKER_FLAKY_GOLDEN=1 — the first worker to receive a golden
//    chunk raises SIGKILL mid-stream (marker DIR/golden): the
//    died-mid-golden-chunk teardown path, made deterministic.
int serve_worker(const WorkerSweepSource& source, unsigned jobs);

// --- orchestrator side -----------------------------------------------------

// One persistent worker process plus its protocol state, driven by the
// orchestrator's single-threaded poll loop. The session never decides retry
// policy: it reports events and hands back the in-flight item; the caller
// re-enqueues through the work queue's budget.
class WorkerSession {
 public:
  using Clock = std::chrono::steady_clock;

  enum class State : std::uint8_t {
    kHandshaking,  // spawned, waiting for a valid hello
    kShipping,     // golden offer sent, waiting for the accept/decline ack
    kDeriving,     // chunks done (or declined), waiting for the ready record
    kIdle,         // handshake done, no assignment outstanding
    kBusy,         // an assignment is in flight
    kDead,         // torn down; take_item() recovers any in-flight work
  };

  struct Event {
    enum class Kind : std::uint8_t {
      kNone,    // nothing new
      kReady,   // handshake completed; the session can take assignments
      kDone,    // the in-flight assignment acked an artifact (validate it!)
      kError,   // the worker reported a shard failure; session stays usable
      kFailed,  // the session died: reason set, in-flight item recoverable
    };
    Kind kind = Kind::kNone;
    bool reused = false;        // kDone: the worker resumed an existing artifact
    std::uint64_t wall_ms = 0;  // kDone: worker-measured shard wall clock
    std::string golden;         // kReady: how the worker obtained golden state
    std::string reason;         // kError / kFailed
    // kDone: the worker's per-assignment counter deltas (empty from old
    // peers); the orchestrator folds them into its fleet.* totals.
    std::vector<std::pair<std::string, std::uint64_t>> metrics;
  };

  // Adopts a worker spawned with piped stdin/stdout (Transport::
  // launch_session). `golden` may be null or empty; when it matches the
  // worker's hello key the shipment is offered and its frames streamed.
  // `deadline` bounds the whole handshake, hello through ready — the
  // derivation a declining worker performs is the expensive half, so the
  // caller passes its per-item timeout. `grace_seconds` is the
  // SIGTERM-to-SIGKILL window every teardown uses.
  WorkerSession(support::ChildProcess child, const GoldenShipment* golden,
                Clock::time_point deadline, double grace_seconds);

  State state() const { return state_; }
  // True until the ready record lands — the phase whose failures the
  // orchestrator's handshake budget (not the per-item budget) bounds.
  bool pre_ready() const {
    return state_ == State::kHandshaking || state_ == State::kShipping ||
           state_ == State::kDeriving;
  }
  bool has_item() const { return has_item_; }
  const WorkItem& item() const { return item_; }
  // Recovers the in-flight item after kFailed/kDone/kError. Clears it.
  WorkItem take_item();

  // Sends an assignment (kIdle -> kBusy) with a completion deadline. The
  // item is consumed (moved from) only on success; on a failed pipe write
  // the session is dead, `item` is left intact, and the caller re-enqueues
  // it.
  bool assign(WorkItem& item, bool force, Clock::time_point deadline);

  // Drains the worker's stdout, advances the protocol, enforces deadlines.
  // At most one meaningful event is returned per call; call repeatedly from
  // the poll loop. `spec` is what ready records are validated against.
  Event pump(const exp::SweepSpec& spec, Clock::time_point now);

  // Polite shutdown of a live session: shutdown record + stdin EOF, then
  // SIGTERM-with-grace teardown. Safe in any state; reaps the process.
  void shutdown(double grace_seconds);

 private:
  Event fail(std::string reason);

  support::ChildProcess child_;
  support::FrameReader reader_;
  const GoldenShipment* golden_ = nullptr;  // not owned; outlives the session
  bool offered_ = false;                    // a non-empty offer went out
  State state_ = State::kHandshaking;
  WorkItem item_;
  bool has_item_ = false;
  Clock::time_point deadline_;
  double grace_seconds_ = 0.0;
};

}  // namespace cicmon::dist
