#include "dist/transport.h"

#include "support/error.h"

namespace cicmon::dist {

support::ChildProcess LocalProcessTransport::launch(const WorkerCommand& command,
                                                    const WorkItem&) {
  return support::spawn_process(command.argv);
}

support::ChildProcess LocalProcessTransport::launch_session(const WorkerCommand& command) {
  support::check(!command.session_argv.empty(), "launch_session without a session command");
  return support::spawn_process_piped(command.session_argv);
}

CommandTemplateTransport::CommandTemplateTransport(std::string template_text)
    : template_text_(std::move(template_text)) {
  support::check(template_text_.find("{cmd}") != std::string::npos,
                 "--transport template must contain the {cmd} placeholder");
}

std::string CommandTemplateTransport::expand(std::string_view template_text,
                                             const WorkerCommand& command,
                                             const WorkItem& item) {
  const std::string shard_text =
      std::to_string(item.shard.index) + "/" + std::to_string(item.shard.count);
  std::string expanded;
  expanded.reserve(template_text.size());
  std::size_t pos = 0;
  while (pos < template_text.size()) {
    const std::size_t brace = template_text.find('{', pos);
    expanded.append(template_text.substr(pos, brace - pos));
    if (brace == std::string_view::npos) break;
    const std::string_view rest = template_text.substr(brace);
    if (rest.starts_with("{cmd}")) {
      expanded += support::shell_join(command.argv);
      pos = brace + 5;
    } else if (rest.starts_with("{shard}")) {
      expanded += shard_text;
      pos = brace + 7;
    } else if (rest.starts_with("{out}")) {
      expanded += support::shell_quote(item.artifact_path);
      pos = brace + 5;
    } else {
      expanded += '{';
      pos = brace + 1;
    }
  }
  return expanded;
}

support::ChildProcess CommandTemplateTransport::launch(const WorkerCommand& command,
                                                       const WorkItem& item) {
  return support::spawn_process({"/bin/sh", "-c", expand(template_text_, command, item)});
}

support::ChildProcess CommandTemplateTransport::launch_session(const WorkerCommand& command) {
  support::check(supports_sessions(), "template transport cannot carry a session");
  support::check(!command.session_argv.empty(), "launch_session without a session command");
  // The wrapper (sh, and whatever the template puts between it and the
  // worker — ssh, a container runner) forwards stdio, so the orchestrator's
  // pipe ends at the worker process wherever it runs.
  WorkerCommand session;
  session.argv = command.session_argv;
  return support::spawn_process_piped(
      {"/bin/sh", "-c", expand(template_text_, session, WorkItem{})});
}

bool CommandTemplateTransport::supports_sessions() const {
  return template_text_.find("{shard}") == std::string::npos &&
         template_text_.find("{out}") == std::string::npos;
}

std::string CommandTemplateTransport::describe() const {
  return "template '" + template_text_ + "'";
}

}  // namespace cicmon::dist
