// Distributed campaign orchestrator: work-queue dispatch over shard
// artifacts.
//
// Takes any exp::SweepSpec-backed sweep, over-decomposes its cell grid into
// N shard work items (N >> workers, so batching amortises process start-up
// while pull scheduling keeps every worker busy), and schedules them onto
// worker processes through a Transport. Per item the orchestrator:
//
//  * resumes — a valid on-disk artifact for exactly (spec, shard) is reused
//    without spawning anything (the same rule workers apply themselves);
//  * spawns `cicmon <cmd> ... --shard I/N --out PATH` via the transport and
//    watches the child with a per-item timeout (heartbeat = the poll loop
//    observing the process alive; a deadline overrun kills and re-enqueues);
//  * validates the produced artifact with the *merge-time* checks
//    (decode + artifact_matches) the moment the worker exits, so a corrupt,
//    truncated, or wrong-parameter artifact is retried immediately instead
//    of poisoning the final merge;
//  * retries with a bounded budget, recording the last failure reason when
//    the budget runs out.
//
// The run finishes by merging the validated artifacts through
// exp::merge_artifacts — the same path `cicmon merge` uses — so the final
// rendered summary is byte-identical to a direct single-process run of the
// same sweep, at any worker/shard count and across worker deaths and
// retries. Failed items leave their completed peers' artifacts on disk, so
// a re-dispatch resumes instead of starting over.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dist/transport.h"
#include "dist/work_queue.h"
#include "exp/sweep.h"

namespace cicmon::dist {

struct DispatchConfig {
  unsigned workers = 0;         // concurrent worker processes; 0 = nproc
  unsigned shards = 0;          // work items; 0 = auto (4x workers, capped at cells)
  unsigned retries = 2;         // extra spawns allowed per item after the first
  unsigned jobs_per_worker = 0; // --jobs per worker; 0 = auto (nproc / workers)
  double timeout_seconds = 300; // per-item wall-clock limit; 0 = none
  std::string artifact_dir;     // where <sweep>-IofN.shard.json files live
  bool force = false;           // ignore existing artifacts, pass --force down
  bool progress = true;         // live progress/ETA lines on stderr
};

struct DispatchResult {
  bool ok = false;
  // Merged full cell grid (exp::merge_artifacts of every shard) when ok.
  std::vector<exp::CellResult> cells;
  unsigned shard_count = 0;
  std::size_t reused = 0;    // shards resumed from matching on-disk artifacts
  std::size_t launched = 0;  // worker spawns, including retries
  std::size_t retried = 0;   // re-enqueues after a failed attempt
  std::vector<WorkFailure> failures;  // non-empty iff !ok
};

// Runs spec's grid to completion over `transport`. `base.argv` is the worker
// command prefix (executable, subcommand, sweep flags); the orchestrator
// appends `--jobs J --shard I/N --out PATH` (and `--force` when configured)
// per item. Throws CicError only for setup errors (unwritable artifact
// directory, invalid config); worker failures are reported via the result.
DispatchResult dispatch_sweep(const exp::SweepSpec& spec, const WorkerCommand& base,
                              Transport& transport, const DispatchConfig& config);

// The artifact path dispatch uses for shard I/N of `sweep` inside `dir`:
// "<dir>/<sweep>-<I>of<N>.shard.json". Shared with tests and the resume
// documentation.
std::string shard_artifact_path(const std::string& dir, const std::string& sweep,
                                const exp::Shard& shard);

}  // namespace cicmon::dist
