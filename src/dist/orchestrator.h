// Distributed campaign orchestrator: work-queue dispatch over shard
// artifacts, served by persistent worker sessions.
//
// Takes any exp::SweepSpec-backed sweep, over-decomposes its cell grid into
// N shard work items (N >> workers, so batching amortises start-up cost
// while pull scheduling keeps every worker busy), and schedules them onto
// worker processes. Two dispatch modes share the queue, the validation and
// the merge:
//
//  * persistent sessions (the default) — each worker slot runs one
//    long-lived `cicmon worker <sweep> ...` process that derives the sweep
//    ONCE and then serves shard assignments over a framed pipe protocol
//    (dist/session.h). With protocol v2 even that one derivation is usually
//    skipped: the orchestrator ships its own golden state (already derived,
//    or loaded from the --golden-cache) down the pipe, so a worker goes from
//    spawn to first shard in the time it takes to stream a few MB. Any
//    transport whose stdio reaches the worker (local pipes, ssh-style
//    templates) carries sessions; completed artifacts stream into an
//    exp::MergeState so the campaign's progress renders incrementally.
//  * exec per shard (the fallback, and the only mode for templates with
//    per-item placeholders) — spawn `cicmon <cmd> ... --shard I/N --out
//    PATH` per item, exactly PR 4's loop.
//
// Per item the orchestrator:
//
//  * resumes — a valid on-disk artifact for exactly (spec, shard) is merged
//    up front without spawning anything (the same rule workers apply);
//  * assigns the shard to a session (or spawns an exec worker) and watches
//    it with a per-item deadline;
//  * validates the produced artifact with the *merge-time* checks
//    (decode + artifact_matches) the moment the ack (or exit) arrives, so a
//    corrupt, truncated, or wrong-parameter artifact is retried immediately
//    instead of poisoning the final merge;
//  * retries with a bounded budget, recording the last failure reason when
//    the budget runs out. A dead, hung, or babbling session is torn down
//    (SIGTERM, short grace, SIGKILL) and its in-flight shard re-enqueued
//    through the same budget; a fresh session takes the slot.
//
// The run finishes through exp::MergeState::finalize — the same result
// `cicmon merge` produces — so the final rendered summary is byte-identical
// to a direct single-process run of the same sweep, at any worker/shard
// count, in either mode, and across session kills mid-assignment. Failed
// items leave their completed peers' artifacts on disk, so a re-dispatch
// resumes instead of starting over.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dist/session.h"
#include "dist/transport.h"
#include "dist/work_queue.h"
#include "exp/sweep.h"

namespace cicmon::dist {

struct DispatchConfig {
  unsigned workers = 0;         // concurrent worker processes; 0 = nproc
  unsigned shards = 0;          // work items; 0 = auto (4x workers, capped at cells)
  unsigned retries = 2;         // extra attempts allowed per item after the first
  unsigned jobs_per_worker = 0; // --jobs per worker; 0 = auto (nproc / workers)
  double timeout_seconds = 300; // per-item wall-clock limit; 0 = none
  double shutdown_grace = 2.0;  // SIGTERM-to-SIGKILL window on teardown
  std::string artifact_dir;     // where <sweep>-IofN.shard.json files live
  bool force = false;           // ignore existing artifacts, pass force down
  bool persistent = true;       // serve items over worker sessions when the
                                // command provides a session_argv
  bool progress = true;         // live progress/ETA lines on stderr
  // Golden state to offer each session worker (dist/session.h). Shared, not
  // copied: one encoded campaign golden can run to megabytes and every
  // session offers the same one. Null or empty = nothing to ship.
  std::shared_ptr<const GoldenShipment> golden;
};

struct DispatchResult {
  bool ok = false;
  // Merged full cell grid (every shard through exp::MergeState) when ok.
  std::vector<exp::CellResult> cells;
  unsigned shard_count = 0;
  bool persistent = false;   // the mode that actually ran
  std::size_t reused = 0;    // shards resumed from matching on-disk artifacts
  std::size_t launched = 0;  // process spawns: sessions, or exec workers + retries
  std::size_t retried = 0;   // re-enqueues after a failed attempt
  // Session-mode telemetry: how each completed handshake obtained its golden
  // state, and the summed worker-measured shard wall clock (done.wall_ms) —
  // the denominator for an honest dispatch-tax number.
  std::size_t golden_shipped = 0;
  std::size_t golden_cached = 0;
  std::size_t golden_derived = 0;
  std::uint64_t worker_wall_ms = 0;
  // Both modes: summed orchestrator-observed assignment run wall, summed
  // assign-time queue waits, the dispatch's own elapsed wall, and the fleet
  // size it ran with — the inputs of the final summary's worker-utilization
  // and queue-wait-vs-run-wall split.
  std::uint64_t busy_ms = 0;
  std::uint64_t queue_wait_ms = 0;
  std::uint64_t elapsed_ms = 0;
  unsigned workers_planned = 0;
  // Fleet-wide counter totals folded from the workers' done.metrics records
  // (session mode only; name-sorted). Also republished into the local obs
  // registry under a fleet. prefix so --metrics and the trace footer see
  // them.
  std::vector<std::pair<std::string, std::uint64_t>> fleet_metrics;
  std::vector<WorkFailure> failures;  // non-empty iff !ok
};

// The resolved shape of a dispatch before anything is launched — what
// `cicmon dispatch --dry-run` prints and dispatch_sweep executes.
struct DispatchPlan {
  unsigned workers = 0;
  unsigned shards = 0;
  unsigned jobs = 0;        // per-worker thread count
  bool persistent = false;  // sessions vs exec-per-shard
};

// Resolves worker/shard/job counts and the session-vs-exec decision from the
// config, the sweep size, whether `base` can be served as a session, and
// whether `transport` can carry one.
DispatchPlan plan_dispatch(const exp::SweepSpec& spec, const WorkerCommand& base,
                           const Transport& transport, const DispatchConfig& config);

// The exec-mode argv for one work item: `base.argv` plus
// `--jobs J --shard I/N --out PATH [--force]` — a worker indistinguishable
// from a hand-launched sharded run. Shared by the exec loop, --dry-run, and
// template-transport expansion.
std::vector<std::string> exec_worker_argv(const WorkerCommand& base, unsigned jobs,
                                          const WorkItem& item, bool force);

// The persistent-session argv: `base.session_argv` plus `--jobs J`.
std::vector<std::string> session_worker_argv(const WorkerCommand& base, unsigned jobs);

// Runs spec's grid to completion. `base.argv` is the exec-mode worker
// command prefix (executable, subcommand, sweep flags); `base.session_argv`,
// when non-empty, is the persistent-worker command (`cicmon worker <cmd>
// ...`) and enables session mode when `transport` supports it. Throws
// CicError for setup errors (unwritable artifact directory, invalid config,
// workers that can never complete a handshake); worker failures are reported
// via the result.
DispatchResult dispatch_sweep(const exp::SweepSpec& spec, const WorkerCommand& base,
                              Transport& transport, const DispatchConfig& config);

// The artifact path dispatch uses for shard I/N of `sweep` inside `dir`:
// "<dir>/<sweep>-<I>of<N>.shard.json". Shared with tests and the resume
// documentation.
std::string shard_artifact_path(const std::string& dir, const std::string& sweep,
                                const exp::Shard& shard);

}  // namespace cicmon::dist
