// How dispatch work items become worker processes.
//
// The orchestrator decides *what* to run (a `cicmon <cmd> ... --shard I/N
// --out PATH` invocation per work item); a Transport decides *where and how*
// it runs. Two implementations ship:
//
//  * LocalProcessTransport — exec the worker argv directly on this host.
//    With the default nproc-sized worker pool this is the single-machine
//    scale-out path.
//  * CommandTemplateTransport — expand a user-supplied shell template and
//    run it via `/bin/sh -c`. The template receives `{cmd}` (the shell-
//    quoted worker command), `{shard}` ("I/N"), and `{out}` (the artifact
//    path), which is enough to wrap the worker in ssh, a cluster submit
//    command, a container runner, or a fault-injecting test harness:
//
//        --transport 'ssh build-02 cd /repo \&\& {cmd}'
//        --transport 'scripts/flaky.sh {shard} {cmd}'
//
// A transport's child exit status reports only worker/transport health; the
// artifact on disk is the real output and the orchestrator validates it
// separately (a clean exit with a corrupt artifact is still a failed
// attempt).
//
// Remote-kill caveat: on timeout/teardown the orchestrator signals the
// *local* child — the ssh client or submit wrapper, not a remote process it
// started. Teardown is SIGTERM first with a short grace period
// (--shutdown-grace semantics in support::ChildProcess::terminate_gracefully)
// precisely so a wrapper that forwards signals (ssh -tt, a shell trap) can
// propagate the kill; once the grace expires SIGKILL follows, and SIGKILL is
// not forwardable — a remote worker whose wrapper was SIGKILLed keeps
// running until it finishes or its host reaps it. Its artifact, if any,
// is simply ignored or re-validated on the next resume.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dist/work_queue.h"
#include "support/subprocess.h"

namespace cicmon::dist {

// The worker invocations dispatch can launch. `argv` is the exec-per-shard
// prefix: the orchestrator appends `--jobs/--shard/--out` per item, so a
// worker is indistinguishable from a hand-launched sharded run.
// `session_argv`, when non-empty, is the persistent-session command
// (`cicmon worker <cmd> <sweep flags>`); the orchestrator appends `--jobs`
// once and then streams shard assignments over the process's stdin
// (dist/session.h). Leave it empty to force exec-per-shard — the only mode
// a CommandTemplateTransport can serve, since a shell template has no pipe
// to speak the session protocol over.
struct WorkerCommand {
  std::vector<std::string> argv;
  std::vector<std::string> session_argv;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Starts the worker for `item`. Throws CicError when the process cannot
  // even be started (the orchestrator counts that as a failed attempt).
  virtual support::ChildProcess launch(const WorkerCommand& command,
                                       const WorkItem& item) = 0;

  // One-line description for progress/failure reports ("local", "template
  // 'ssh ...'").
  virtual std::string describe() const = 0;
};

class LocalProcessTransport final : public Transport {
 public:
  support::ChildProcess launch(const WorkerCommand& command, const WorkItem& item) override;
  std::string describe() const override { return "local"; }
};

class CommandTemplateTransport final : public Transport {
 public:
  // Throws CicError when the template lacks the `{cmd}` placeholder — a
  // transport that never runs the worker command cannot produce artifacts.
  explicit CommandTemplateTransport(std::string template_text);

  support::ChildProcess launch(const WorkerCommand& command, const WorkItem& item) override;
  std::string describe() const override;

  // Placeholder expansion, exposed for tests: every occurrence of `{cmd}`,
  // `{shard}`, and `{out}` is substituted; other text passes through.
  static std::string expand(std::string_view template_text, const WorkerCommand& command,
                            const WorkItem& item);

 private:
  std::string template_text_;
};

}  // namespace cicmon::dist
