// How dispatch work items become worker processes.
//
// The orchestrator decides *what* to run; a Transport decides *where and
// how* it runs. Two implementations ship:
//
//  * LocalProcessTransport — exec the worker argv directly on this host.
//    With the default nproc-sized worker pool this is the single-machine
//    scale-out path.
//  * CommandTemplateTransport — expand a user-supplied shell template and
//    run it via `/bin/sh -c`. The template receives `{cmd}` (the shell-
//    quoted worker command) and, in exec-per-shard mode, `{shard}` ("I/N")
//    and `{out}` (the artifact path) — enough to wrap the worker in ssh, a
//    cluster submit command, a container runner, or a fault-injecting test
//    harness:
//
//        --transport 'ssh build-02 cd /repo \&\& {cmd}'
//        --transport 'scripts/flaky.sh {shard} {cmd}'
//
// Both transports serve both dispatch modes. launch() starts one
// exec-per-shard worker whose exit ends the attempt. launch_session()
// starts a *persistent* worker with piped stdin/stdout and hands the pipe
// to the orchestrator, which speaks the session protocol (dist/session.h)
// over it — for a template transport the wrapper (sh, ssh, a container
// runner) simply forwards stdio, which is exactly what ssh and every
// sane submit wrapper do, so a multi-host fleet gets persistent sessions
// and golden-state shipping for free. A template that bakes in `{shard}`
// or `{out}` is inherently per-item, so supports_sessions() is false for
// it and dispatch falls back to exec-per-shard.
//
// A transport's child exit status reports only worker/transport health; the
// artifact on disk is the real output and the orchestrator validates it
// separately (a clean exit with a corrupt artifact is still a failed
// attempt).
//
// Remote-kill caveat: on timeout/teardown the orchestrator signals the
// *local* child — the ssh client or submit wrapper, not a remote process it
// started. Teardown is SIGTERM first with a short grace period
// (--shutdown-grace semantics in support::ChildProcess::terminate_gracefully)
// precisely so a wrapper that forwards signals (ssh -tt, a shell trap) can
// propagate the kill; once the grace expires SIGKILL follows, and SIGKILL is
// not forwardable — a remote worker whose wrapper was SIGKILLed keeps
// running until it finishes or its host reaps it. Its artifact, if any,
// is simply ignored or re-validated on the next resume. A session worker is
// better off: its stdin is the orchestrator's pipe, so teardown's stdin EOF
// reaches the far end of an ssh hop even though signals may not.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dist/work_queue.h"
#include "support/subprocess.h"

namespace cicmon::dist {

// The worker invocations dispatch can launch. `argv` is the exec-per-shard
// prefix: the orchestrator appends `--jobs/--shard/--out` per item, so a
// worker is indistinguishable from a hand-launched sharded run.
// `session_argv`, when non-empty, is the persistent-session command
// (`cicmon worker <cmd> <sweep flags> --jobs N`, complete — launch_session
// appends nothing); the orchestrator streams shard assignments over the
// process's stdin (dist/session.h). Leave it empty to force exec-per-shard.
struct WorkerCommand {
  std::vector<std::string> argv;
  std::vector<std::string> session_argv;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Starts the exec-per-shard worker for `item`. Throws CicError when the
  // process cannot even be started (the orchestrator counts that as a
  // failed attempt).
  virtual support::ChildProcess launch(const WorkerCommand& command,
                                       const WorkItem& item) = 0;

  // Starts a persistent session worker with piped stdin/stdout
  // (command.session_argv must be non-empty). Only called when
  // supports_sessions() is true. Throws CicError on spawn failure.
  virtual support::ChildProcess launch_session(const WorkerCommand& command) = 0;

  // True when this transport can carry the session protocol — i.e. its
  // children's stdio reaches the worker process.
  virtual bool supports_sessions() const = 0;

  // One-line description for progress/failure reports ("local", "template
  // 'ssh ...'").
  virtual std::string describe() const = 0;
};

class LocalProcessTransport final : public Transport {
 public:
  support::ChildProcess launch(const WorkerCommand& command, const WorkItem& item) override;
  support::ChildProcess launch_session(const WorkerCommand& command) override;
  bool supports_sessions() const override { return true; }
  std::string describe() const override { return "local"; }
};

class CommandTemplateTransport final : public Transport {
 public:
  // Throws CicError when the template lacks the `{cmd}` placeholder — a
  // transport that never runs the worker command cannot produce artifacts.
  explicit CommandTemplateTransport(std::string template_text);

  support::ChildProcess launch(const WorkerCommand& command, const WorkItem& item) override;
  support::ChildProcess launch_session(const WorkerCommand& command) override;
  // Per-item placeholders pin the template to exec-per-shard.
  bool supports_sessions() const override;
  std::string describe() const override;

  // Placeholder expansion, exposed for tests: every occurrence of `{cmd}`,
  // `{shard}`, and `{out}` is substituted; other text passes through.
  static std::string expand(std::string_view template_text, const WorkerCommand& command,
                            const WorkItem& item);

 private:
  std::string template_text_;
};

}  // namespace cicmon::dist
