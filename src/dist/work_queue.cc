#include "dist/work_queue.h"

#include <utility>

#include "support/error.h"

namespace cicmon::dist {

WorkQueue::WorkQueue(unsigned max_attempts) : max_attempts_(max_attempts) {
  support::check(max_attempts >= 1, "WorkQueue needs at least one attempt per item");
}

void WorkQueue::push(WorkItem item) {
  ++total_;
  item.enqueued_at = std::chrono::steady_clock::now();
  pending_.push_back(std::move(item));
}

bool WorkQueue::try_pop(WorkItem* out) {
  if (pending_.empty()) return false;
  *out = std::move(pending_.front());
  pending_.pop_front();
  ++out->attempts;
  return true;
}

void WorkQueue::complete(const WorkItem&) { ++done_; }

bool WorkQueue::retry(WorkItem item, std::string reason) {
  if (item.attempts >= max_attempts_) {
    failures_.push_back({std::move(item), std::move(reason)});
    return false;
  }
  item.enqueued_at = std::chrono::steady_clock::now();
  pending_.push_back(std::move(item));
  return true;
}

}  // namespace cicmon::dist
