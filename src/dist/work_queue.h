// Pull-based work queue with bounded retries for the dispatch orchestrator.
//
// The orchestrator over-decomposes a sweep into many shard work items
// (N >> workers) and lets free worker slots *pull* the next item, so a slow
// shard never stalls the others the way a static round-robin assignment
// would — the dynamic load balancing half of the design. The queue also owns
// the failure policy: an item whose worker died, timed out, or produced an
// artifact that fails merge-time validation is re-enqueued until its
// spawn-attempt budget is exhausted, at which point it is recorded as a
// failure with the last reason, for the final report.
//
// The queue is driven by the single-threaded orchestrator poll loop and is
// deliberately not synchronized; worker parallelism lives in the spawned
// processes, not here.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "exp/sweep.h"

namespace cicmon::dist {

// One schedulable unit: shard I/N of the sweep, destined for one artifact
// file.
struct WorkItem {
  exp::Shard shard;
  std::string artifact_path;
  unsigned attempts = 0;  // worker spawns so far (incremented on pop)
  // When the item (re-)entered the queue; the orchestrator reports the
  // assign-time difference as the shard's queue wait.
  std::chrono::steady_clock::time_point enqueued_at{};
};

// An item whose attempt budget ran out, with the last failure observed.
struct WorkFailure {
  WorkItem item;
  std::string reason;
};

class WorkQueue {
 public:
  // `max_attempts` is the total spawn budget per item (first run + retries).
  explicit WorkQueue(unsigned max_attempts);

  void push(WorkItem item);

  // Pulls the next pending item, counting the attempt. False when no work is
  // pending (items may still be in flight with the caller).
  bool try_pop(WorkItem* out);

  // The item's artifact validated; counts toward done().
  void complete(const WorkItem& item);

  // The item's attempt failed for `reason`. Re-enqueues at the back (other
  // items keep flowing first) and returns true while budget remains;
  // otherwise records the failure and returns false.
  bool retry(WorkItem item, std::string reason);

  std::size_t total() const { return total_; }
  std::size_t done() const { return done_; }
  std::size_t pending() const { return pending_.size(); }
  const std::vector<WorkFailure>& failures() const { return failures_; }

 private:
  unsigned max_attempts_;
  std::deque<WorkItem> pending_;
  std::size_t total_ = 0;
  std::size_t done_ = 0;
  std::vector<WorkFailure> failures_;
};

}  // namespace cicmon::dist
