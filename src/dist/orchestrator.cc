#include "dist/orchestrator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "dist/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/parallel.h"
#include "support/subprocess.h"

namespace cicmon::dist {
namespace {

using Clock = std::chrono::steady_clock;

// The merge-time artifact checks, applied per item the moment its worker
// acks (session mode) or exits (exec mode): the file must decode as a
// cicmon-shard-v1 document (catching truncation and tampering) and match
// (spec, shard) exactly (catching a transport that ran the wrong command).
// On success the decoded artifact is handed to `out` so the merge never
// re-reads the file; on failure `why` reports the violation for the retry
// log.
bool artifact_is_valid(const std::string& path, const exp::SweepSpec& spec,
                       const exp::Shard& shard, exp::ShardArtifact* out, std::string* why) {
  try {
    exp::ShardArtifact artifact = exp::load_shard_artifact(path);
    if (exp::artifact_matches(artifact, spec, shard)) {
      *out = std::move(artifact);
      return true;
    }
    *why = "artifact '" + path + "' does not match the sweep parameters";
  } catch (const support::CicError& error) {
    *why = error.what();
  }
  return false;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// One dispatch.shard span per completed assignment: everything the report
// needs to reconstruct the per-worker timeline (who ran it, how long it
// waited in the queue, the worker-measured run wall, resume status).
void trace_shard_span(const WorkItem& item, std::uint64_t worker_id,
                      std::uint64_t assign_t_us, double queue_wait_ms,
                      std::uint64_t wall_ms, bool reused) {
  if (!obs::trace_enabled()) return;
  obs::TraceArgs args;
  args.add("shard", std::to_string(item.shard.index) + "/" +
                        std::to_string(item.shard.count));
  args.add("worker", worker_id);
  args.add("queue_wait_ms", queue_wait_ms);
  args.add("wall_ms", wall_ms);
  args.add("reused", reused);
  obs::trace_span("dispatch.shard", assign_t_us, args);
}

Clock::time_point deadline_after(double seconds) {
  return seconds > 0 ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                          std::chrono::duration<double>(seconds))
                     : Clock::time_point::max();
}

// Shared mutable state of one dispatch run: the queue, the streaming merge,
// and the counters both execution modes report through. Owning it in one
// struct keeps the session and exec loops honest about going through the
// same completion/retry funnel.
struct RunState {
  const exp::SweepSpec& spec;
  const DispatchConfig& config;
  const DispatchPlan& plan;
  WorkQueue queue;
  exp::MergeState merge;
  DispatchResult& result;
  Clock::time_point start = Clock::now();
  Clock::time_point last_progress = start;
  std::size_t computed = 0;      // completions that actually ran a worker (for ETA)
  std::size_t resumed_done = 0;  // shards merged by the resume pre-pass (never queued)
  // Fleet-wide counter totals folded from the workers' done.metrics records.
  std::map<std::string, std::uint64_t> fleet;

  RunState(const exp::SweepSpec& spec_, const DispatchConfig& config_,
           const DispatchPlan& plan_, DispatchResult& result_)
      : spec(spec_), config(config_), plan(plan_), queue(config_.retries + 1),
        result(result_) {}

  std::size_t items_done() const { return resumed_done + queue.done(); }

  // One progress/streaming-merge line on stderr, throttled unless forced.
  // Forced on every merged shard, so a long campaign visibly renders
  // incrementally as artifacts land.
  void progress(bool force, std::size_t active) {
    if (!config.progress) return;
    const Clock::time_point now = Clock::now();
    if (!force && now - last_progress < std::chrono::milliseconds(500)) return;
    last_progress = now;
    std::string eta = "?";
    if (computed > 0) {
      const std::size_t remaining =
          plan.shards - items_done() - queue.failures().size();
      eta = std::to_string(static_cast<long>(seconds_since(start) /
                                             static_cast<double>(computed) *
                                             static_cast<double>(remaining))) +
            "s";
    }
    // Before the first artifact lands MergeState knows no totals; show the
    // plan's denominators so the operator never reads "0/0".
    const std::string merged =
        merge.shards_merged() > 0
            ? merge.progress()
            : "0/" + std::to_string(plan.shards) + " shards, 0/" +
                  std::to_string(spec.cells) + " cells (0.0%)";
    std::fprintf(stderr, "dispatch: merged %s | %zu active, %zu reused, %zu retried, ETA %s\n",
                 merged.c_str(), active, result.reused, result.retried, eta.c_str());
  }

  void fail_or_retry(WorkItem item, std::string reason) {
    if (queue.retry(std::move(item), std::move(reason))) {
      static const obs::CounterId k_retries = obs::counter("dispatch.retries");
      obs::bump(k_retries);
      ++result.retried;
    }
  }

  // Books one finished assignment into the telemetry: timers, totals, and
  // the dispatch.shard trace span. `run_ms` is the orchestrator-observed
  // assignment wall; `wall_ms` the worker-measured one (equal in exec mode).
  void observe_assignment(const WorkItem& item, std::uint64_t worker_id,
                          std::uint64_t assign_t_us, double queue_wait_ms, double run_ms,
                          std::uint64_t wall_ms, bool reused) {
    static const obs::TimerId k_wait = obs::timer("dispatch.queue_wait_ms");
    static const obs::TimerId k_run = obs::timer("dispatch.shard_ms");
    static const obs::CounterId k_assignments = obs::counter("dispatch.assignments");
    obs::record(k_wait, queue_wait_ms);
    obs::record(k_run, run_ms);
    obs::bump(k_assignments);
    result.queue_wait_ms += static_cast<std::uint64_t>(queue_wait_ms);
    result.busy_ms += static_cast<std::uint64_t>(run_ms);
    trace_shard_span(item, worker_id, assign_t_us, queue_wait_ms, wall_ms, reused);
  }

  // A validated artifact for `item` streams straight into the merge.
  void complete(const WorkItem& item, exp::ShardArtifact artifact, bool counts_as_computed,
                std::size_t active) {
    queue.complete(item);
    merge.add(std::move(artifact));
    if (counts_as_computed) ++computed;
    progress(true, active);
  }
};

// --- exec-per-shard mode (PR 4's loop, kept as the template-transport and
// --exec-per-shard fallback) ----------------------------------------------

struct RunningExec {
  WorkItem item;
  support::ChildProcess child;
  Clock::time_point deadline;
  Clock::time_point started;
  std::uint64_t worker_id = 0;   // launch ordinal, stable across the run
  std::uint64_t assign_t_us = 0; // trace clock at launch
  double queue_wait_ms = 0.0;
};

void run_exec(RunState& state, const WorkerCommand& base, Transport& transport) {
  std::vector<RunningExec> running;
  running.reserve(state.plan.workers);

  while (true) {
    // Fill free worker slots from the queue — the pull half of the load
    // balancing.
    while (running.size() < state.plan.workers) {
      WorkItem item;
      if (!state.queue.try_pop(&item)) break;
      WorkerCommand command = base;
      command.argv = exec_worker_argv(base, state.plan.jobs, item, state.config.force);
      support::ChildProcess child;
      try {
        child = transport.launch(command, item);
      } catch (const support::CicError& error) {
        state.fail_or_retry(std::move(item), std::string("launch failed: ") + error.what());
        continue;
      }
      ++state.result.launched;
      RunningExec slot{std::move(item), std::move(child),
                       deadline_after(state.config.timeout_seconds)};
      slot.started = Clock::now();
      slot.worker_id = state.result.launched;
      slot.assign_t_us = obs::trace_now_us();
      slot.queue_wait_ms = ms_since(slot.item.enqueued_at);
      running.push_back(std::move(slot));
    }
    if (running.empty() && state.queue.pending() == 0) break;

    // Poll the fleet. The exit status only reports worker/transport health;
    // the artifact is the real output, so it is validated either way — a
    // worker killed after its atomic artifact rename still counts as done,
    // and a clean exit with a bad artifact is still a failed attempt.
    bool reaped = false;
    for (std::size_t i = 0; i < running.size();) {
      RunningExec& slot = running[i];
      int status = 0;
      bool exited = slot.child.poll(&status);
      bool timed_out = false;
      if (!exited && Clock::now() >= slot.deadline) {
        // SIGTERM first so an ssh-style wrapper can forward the kill to the
        // remote worker; SIGKILL only after the grace period (transport.h
        // documents what each signal can reach).
        status = slot.child.terminate_gracefully(state.config.shutdown_grace);
        exited = true;
        timed_out = true;
      }
      if (!exited) {
        ++i;
        continue;
      }
      reaped = true;
      WorkItem item = std::move(slot.item);
      const double run_ms = ms_since(slot.started);
      const std::uint64_t worker_id = slot.worker_id;
      const std::uint64_t assign_t_us = slot.assign_t_us;
      const double queue_wait_ms = slot.queue_wait_ms;
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
      std::string why;
      exp::ShardArtifact artifact;
      if (artifact_is_valid(item.artifact_path, state.spec, item.shard, &artifact, &why)) {
        state.observe_assignment(item, worker_id, assign_t_us, queue_wait_ms, run_ms,
                                 static_cast<std::uint64_t>(run_ms), /*reused=*/false);
        state.result.worker_wall_ms += static_cast<std::uint64_t>(run_ms);
        state.complete(item, std::move(artifact), /*counts_as_computed=*/true, running.size());
      } else {
        std::string reason =
            timed_out ? "timed out after " + std::to_string(state.config.timeout_seconds) +
                            "s (" + support::describe_exit(status) + ")"
                      : "worker " + support::describe_exit(status);
        state.fail_or_retry(std::move(item), reason + "; " + why);
      }
    }
    if (!reaped) {
      state.progress(false, running.size());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

// --- persistent-session mode ----------------------------------------------

// One fleet slot: the session plus the orchestrator-side telemetry of its
// current assignment (the session itself only knows protocol state).
struct SessionSlot {
  std::unique_ptr<WorkerSession> session;
  std::uint64_t worker_id = 0;     // launch ordinal, stable across the run
  Clock::time_point assigned_at{}; // when the current assignment went out
  std::uint64_t assign_t_us = 0;   // trace clock at assignment
  double queue_wait_ms = 0.0;      // the current assignment's queue wait
};

void run_sessions(RunState& state, const WorkerCommand& base, Transport& transport) {
  WorkerCommand command = base;
  command.session_argv = session_worker_argv(base, state.plan.jobs);
  std::vector<SessionSlot> sessions;
  sessions.reserve(state.plan.workers);
  // A session that dies before completing a handshake is not tied to any
  // work item, so the per-item retry budget cannot bound it. This counter
  // can: `retries + 1` consecutive handshake failures with no success in
  // between means the worker command itself is broken — a setup error.
  unsigned handshake_failures = 0;
  std::string last_handshake_error = "worker never started";

  auto spawn_ready_count = [&] {
    std::size_t n = 0;
    for (const auto& slot : sessions) {
      if (slot.session->pre_ready() || slot.session->state() == WorkerSession::State::kIdle)
        ++n;
    }
    return n;
  };
  auto busy_count = [&] {
    std::size_t n = 0;
    for (const auto& slot : sessions) {
      if (slot.session->state() == WorkerSession::State::kBusy) ++n;
    }
    return n;
  };

  while (state.queue.pending() > 0 || busy_count() > 0) {
    if (handshake_failures > state.config.retries) {
      // The worker command itself is broken (wrong binary, version skew,
      // crash at startup): no amount of per-item retrying can make
      // progress. Tear the fleet down before surfacing the setup error.
      for (auto& slot : sessions) slot.session->shutdown(state.config.shutdown_grace);
      throw support::CicError("persistent workers failed " +
                              std::to_string(handshake_failures) +
                              " consecutive handshakes; last: " + last_handshake_error);
    }

    // Top up the fleet: one session per worker slot, but never more sessions
    // than there is pending work for (a session serves many items, so idle
    // extras would only pay a useless golden derivation).
    while (sessions.size() < state.plan.workers &&
           spawn_ready_count() < state.queue.pending()) {
      try {
        SessionSlot slot;
        slot.session = std::make_unique<WorkerSession>(
            transport.launch_session(command), state.config.golden.get(),
            deadline_after(state.config.timeout_seconds), state.config.shutdown_grace);
        ++state.result.launched;
        slot.worker_id = state.result.launched;
        sessions.push_back(std::move(slot));
      } catch (const support::CicError& error) {
        ++handshake_failures;
        last_handshake_error = std::string("spawn failed: ") + error.what();
        break;
      }
    }

    // Hand pending items to idle sessions.
    for (auto& slot : sessions) {
      if (slot.session->state() != WorkerSession::State::kIdle) continue;
      WorkItem item;
      if (!state.queue.try_pop(&item)) break;
      const double queue_wait_ms = ms_since(item.enqueued_at);
      if (!slot.session->assign(item, state.config.force,
                                deadline_after(state.config.timeout_seconds))) {
        // The write failed, so the item never reached the worker; assign()
        // left it with us — put it back through the budget.
        state.fail_or_retry(std::move(item), "session pipe write failed");
        continue;
      }
      slot.assigned_at = Clock::now();
      slot.assign_t_us = obs::trace_now_us();
      slot.queue_wait_ms = queue_wait_ms;
    }

    // Pump every session; react to at most one event each per iteration.
    bool advanced = false;
    const Clock::time_point now = Clock::now();
    for (auto& slot : sessions) {
      WorkerSession& session = *slot.session;
      if (session.state() == WorkerSession::State::kDead) continue;
      const bool was_pre_ready = session.pre_ready();
      WorkerSession::Event event = session.pump(state.spec, now);
      switch (event.kind) {
        case WorkerSession::Event::Kind::kNone:
          break;
        case WorkerSession::Event::Kind::kReady: {
          advanced = true;
          handshake_failures = 0;
          static const obs::CounterId k_golden[3] = {
              obs::counter("dispatch.golden.shipped"),
              obs::counter("dispatch.golden.cached"),
              obs::counter("dispatch.golden.derived")};
          if (event.golden == "shipped") {
            obs::bump(k_golden[0]);
            ++state.result.golden_shipped;
          } else if (event.golden == "cached") {
            obs::bump(k_golden[1]);
            ++state.result.golden_cached;
          } else if (event.golden == "derived") {
            obs::bump(k_golden[2]);
            ++state.result.golden_derived;
          }
          if (obs::trace_enabled()) {
            obs::TraceArgs args;
            args.add("worker", slot.worker_id);
            args.add("golden", event.golden);
            obs::trace_instant("session.ready", args);
          }
          break;
        }
        case WorkerSession::Event::Kind::kDone: {
          advanced = true;
          state.result.worker_wall_ms += event.wall_ms;
          for (const auto& [name, value] : event.metrics) state.fleet[name] += value;
          WorkItem item = session.take_item();
          state.observe_assignment(item, slot.worker_id, slot.assign_t_us,
                                   slot.queue_wait_ms, ms_since(slot.assigned_at),
                                   event.wall_ms, event.reused);
          std::string why;
          exp::ShardArtifact artifact;
          if (artifact_is_valid(item.artifact_path, state.spec, item.shard, &artifact, &why)) {
            if (event.reused) ++state.result.reused;
            state.complete(item, std::move(artifact), /*counts_as_computed=*/!event.reused,
                           busy_count());
          } else {
            // The worker *said* done but the artifact fails validation: a
            // failed attempt, but the session keeps its slot — the artifact
            // checks, not trust in the ack, protect the merge.
            state.fail_or_retry(std::move(item), "worker acked an invalid artifact; " + why);
          }
          break;
        }
        case WorkerSession::Event::Kind::kError:
          advanced = true;
          state.fail_or_retry(session.take_item(), std::move(event.reason));
          break;
        case WorkerSession::Event::Kind::kFailed: {
          advanced = true;
          static const obs::CounterId k_teardowns[2] = {
              obs::counter("dispatch.session.handshake_failures"),
              obs::counter("dispatch.session.teardowns")};
          obs::bump(was_pre_ready ? k_teardowns[0] : k_teardowns[1]);
          if (obs::trace_enabled()) {
            obs::TraceArgs args;
            args.add("worker", slot.worker_id);
            args.add("reason", event.reason);
            obs::trace_instant("session.failed", args);
          }
          if (was_pre_ready) {
            ++handshake_failures;
            last_handshake_error = event.reason;
          }
          if (session.has_item()) {
            state.fail_or_retry(session.take_item(),
                                "session failed mid-assignment: " + event.reason);
          }
          break;
        }
      }
    }

    // Cull the dead; replacements spawn at the top of the next iteration.
    std::erase_if(sessions, [](const SessionSlot& slot) {
      return slot.session->state() == WorkerSession::State::kDead;
    });

    if (!advanced) {
      state.progress(false, busy_count());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  for (auto& slot : sessions) slot.session->shutdown(state.config.shutdown_grace);
}

}  // namespace

std::string shard_artifact_path(const std::string& dir, const std::string& sweep,
                                const exp::Shard& shard) {
  return dir + "/" + sweep + "-" + std::to_string(shard.index) + "of" +
         std::to_string(shard.count) + ".shard.json";
}

DispatchPlan plan_dispatch(const exp::SweepSpec& spec, const WorkerCommand& base,
                           const Transport& transport, const DispatchConfig& config) {
  support::check(spec.cells > 0, "dispatch needs a sweep with at least one cell");
  DispatchPlan plan;
  plan.workers = config.workers != 0 ? config.workers : support::resolve_jobs(0);
  // Over-decompose by default: 4 items per worker slot keeps every slot busy
  // until the end (a slow shard overlaps the others' tails) while still
  // batching many cells per assignment. Never more shards than cells — an
  // empty shard is work scheduled for nothing.
  plan.shards = config.shards != 0
                    ? config.shards
                    : static_cast<unsigned>(
                          std::min<std::size_t>(spec.cells, std::size_t{plan.workers} * 4));
  // Split the host's cores between concurrent workers unless told otherwise.
  plan.jobs = config.jobs_per_worker != 0
                  ? config.jobs_per_worker
                  : std::max(1U, support::resolve_jobs(0) / std::max(1U, plan.workers));
  plan.persistent =
      config.persistent && !base.session_argv.empty() && transport.supports_sessions();
  return plan;
}

std::vector<std::string> exec_worker_argv(const WorkerCommand& base, unsigned jobs,
                                          const WorkItem& item, bool force) {
  std::vector<std::string> argv = base.argv;
  argv.insert(argv.end(),
              {"--jobs", std::to_string(jobs), "--shard",
               std::to_string(item.shard.index) + "/" + std::to_string(item.shard.count),
               "--out", item.artifact_path});
  if (force) argv.emplace_back("--force");
  return argv;
}

std::vector<std::string> session_worker_argv(const WorkerCommand& base, unsigned jobs) {
  std::vector<std::string> argv = base.session_argv;
  argv.insert(argv.end(), {"--jobs", std::to_string(jobs)});
  return argv;
}

DispatchResult dispatch_sweep(const exp::SweepSpec& spec, const WorkerCommand& base,
                              Transport& transport, const DispatchConfig& config) {
  support::check(!base.argv.empty(), "dispatch needs a worker command");
  const DispatchPlan plan = plan_dispatch(spec, base, transport, config);

  const std::string dir = config.artifact_dir.empty() ? std::string(".") : config.artifact_dir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  support::check(!ec && std::filesystem::is_directory(dir),
                 "cannot create artifact directory '" + dir + "'");

  DispatchResult result;
  result.shard_count = plan.shards;
  result.persistent = plan.persistent;

  RunState state(spec, config, plan, result);
  // Resume pre-pass: shards whose artifacts already validate merge before
  // any worker or session is spawned, so a fully-resumed campaign costs zero
  // process launches and a partially-resumed one sizes its fleet to the work
  // actually left.
  for (unsigned i = 1; i <= plan.shards; ++i) {
    const exp::Shard shard{i, plan.shards};
    WorkItem item{shard, shard_artifact_path(dir, spec.sweep, shard), 0};
    exp::ShardArtifact artifact;
    std::string why;
    if (!config.force &&
        artifact_is_valid(item.artifact_path, spec, shard, &artifact, &why)) {
      state.merge.add(std::move(artifact));
      ++result.reused;
      ++state.resumed_done;
      state.progress(false, 0);  // throttled: a full resume lands all at once
    } else {
      state.queue.push(std::move(item));
    }
  }

  if (state.queue.pending() > 0) {
    if (plan.persistent) {
      run_sessions(state, base, transport);
    } else {
      run_exec(state, base, transport);
    }
  }
  state.progress(true, 0);

  result.elapsed_ms = static_cast<std::uint64_t>(ms_since(state.start));
  result.workers_planned = plan.workers;
  // Republish the fleet totals into the local registry under a fleet. prefix
  // so --metrics and the trace footer report worker-side activity alongside
  // the orchestrator's own counters. Cold path: once per dispatch.
  for (const auto& [name, value] : state.fleet) {
    result.fleet_metrics.emplace_back(name, value);
    obs::bump("fleet." + name, value);
  }

  result.failures = state.queue.failures();
  result.ok = result.failures.empty();
  if (result.ok) {
    // Same merge the `cicmon merge` path performs, already streamed shard by
    // shard — finalize is just the completeness check plus handing the cells
    // over, byte-identical to a direct single-process run.
    result.cells = std::move(state.merge).finalize();
  }
  return result;
}

}  // namespace cicmon::dist
