#include "dist/orchestrator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>
#include <utility>

#include "dist/session.h"
#include "support/error.h"
#include "support/parallel.h"
#include "support/subprocess.h"

namespace cicmon::dist {
namespace {

using Clock = std::chrono::steady_clock;

// The merge-time artifact checks, applied per item the moment its worker
// acks (session mode) or exits (exec mode): the file must decode as a
// cicmon-shard-v1 document (catching truncation and tampering) and match
// (spec, shard) exactly (catching a transport that ran the wrong command).
// On success the decoded artifact is handed to `out` so the merge never
// re-reads the file; on failure `why` reports the violation for the retry
// log.
bool artifact_is_valid(const std::string& path, const exp::SweepSpec& spec,
                       const exp::Shard& shard, exp::ShardArtifact* out, std::string* why) {
  try {
    exp::ShardArtifact artifact = exp::load_shard_artifact(path);
    if (exp::artifact_matches(artifact, spec, shard)) {
      *out = std::move(artifact);
      return true;
    }
    *why = "artifact '" + path + "' does not match the sweep parameters";
  } catch (const support::CicError& error) {
    *why = error.what();
  }
  return false;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Clock::time_point deadline_after(double seconds) {
  return seconds > 0 ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                          std::chrono::duration<double>(seconds))
                     : Clock::time_point::max();
}

// Shared mutable state of one dispatch run: the queue, the streaming merge,
// and the counters both execution modes report through. Owning it in one
// struct keeps the session and exec loops honest about going through the
// same completion/retry funnel.
struct RunState {
  const exp::SweepSpec& spec;
  const DispatchConfig& config;
  const DispatchPlan& plan;
  WorkQueue queue;
  exp::MergeState merge;
  DispatchResult& result;
  Clock::time_point start = Clock::now();
  Clock::time_point last_progress = start;
  std::size_t computed = 0;      // completions that actually ran a worker (for ETA)
  std::size_t resumed_done = 0;  // shards merged by the resume pre-pass (never queued)

  RunState(const exp::SweepSpec& spec_, const DispatchConfig& config_,
           const DispatchPlan& plan_, DispatchResult& result_)
      : spec(spec_), config(config_), plan(plan_), queue(config_.retries + 1),
        result(result_) {}

  std::size_t items_done() const { return resumed_done + queue.done(); }

  // One progress/streaming-merge line on stderr, throttled unless forced.
  // Forced on every merged shard, so a long campaign visibly renders
  // incrementally as artifacts land.
  void progress(bool force, std::size_t active) {
    if (!config.progress) return;
    const Clock::time_point now = Clock::now();
    if (!force && now - last_progress < std::chrono::milliseconds(500)) return;
    last_progress = now;
    std::string eta = "?";
    if (computed > 0) {
      const std::size_t remaining =
          plan.shards - items_done() - queue.failures().size();
      eta = std::to_string(static_cast<long>(seconds_since(start) /
                                             static_cast<double>(computed) *
                                             static_cast<double>(remaining))) +
            "s";
    }
    // Before the first artifact lands MergeState knows no totals; show the
    // plan's denominators so the operator never reads "0/0".
    const std::string merged =
        merge.shards_merged() > 0
            ? merge.progress()
            : "0/" + std::to_string(plan.shards) + " shards, 0/" +
                  std::to_string(spec.cells) + " cells (0.0%)";
    std::fprintf(stderr, "dispatch: merged %s | %zu active, %zu reused, %zu retried, ETA %s\n",
                 merged.c_str(), active, result.reused, result.retried, eta.c_str());
  }

  void fail_or_retry(WorkItem item, std::string reason) {
    if (queue.retry(std::move(item), std::move(reason))) ++result.retried;
  }

  // A validated artifact for `item` streams straight into the merge.
  void complete(const WorkItem& item, exp::ShardArtifact artifact, bool counts_as_computed,
                std::size_t active) {
    queue.complete(item);
    merge.add(std::move(artifact));
    if (counts_as_computed) ++computed;
    progress(true, active);
  }
};

// --- exec-per-shard mode (PR 4's loop, kept as the template-transport and
// --exec-per-shard fallback) ----------------------------------------------

struct RunningExec {
  WorkItem item;
  support::ChildProcess child;
  Clock::time_point deadline;
};

void run_exec(RunState& state, const WorkerCommand& base, Transport& transport) {
  std::vector<RunningExec> running;
  running.reserve(state.plan.workers);

  while (true) {
    // Fill free worker slots from the queue — the pull half of the load
    // balancing.
    while (running.size() < state.plan.workers) {
      WorkItem item;
      if (!state.queue.try_pop(&item)) break;
      WorkerCommand command = base;
      command.argv = exec_worker_argv(base, state.plan.jobs, item, state.config.force);
      support::ChildProcess child;
      try {
        child = transport.launch(command, item);
      } catch (const support::CicError& error) {
        state.fail_or_retry(std::move(item), std::string("launch failed: ") + error.what());
        continue;
      }
      ++state.result.launched;
      running.push_back(RunningExec{std::move(item), std::move(child),
                                    deadline_after(state.config.timeout_seconds)});
    }
    if (running.empty() && state.queue.pending() == 0) break;

    // Poll the fleet. The exit status only reports worker/transport health;
    // the artifact is the real output, so it is validated either way — a
    // worker killed after its atomic artifact rename still counts as done,
    // and a clean exit with a bad artifact is still a failed attempt.
    bool reaped = false;
    for (std::size_t i = 0; i < running.size();) {
      RunningExec& slot = running[i];
      int status = 0;
      bool exited = slot.child.poll(&status);
      bool timed_out = false;
      if (!exited && Clock::now() >= slot.deadline) {
        // SIGTERM first so an ssh-style wrapper can forward the kill to the
        // remote worker; SIGKILL only after the grace period (transport.h
        // documents what each signal can reach).
        status = slot.child.terminate_gracefully(state.config.shutdown_grace);
        exited = true;
        timed_out = true;
      }
      if (!exited) {
        ++i;
        continue;
      }
      reaped = true;
      WorkItem item = std::move(slot.item);
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
      std::string why;
      exp::ShardArtifact artifact;
      if (artifact_is_valid(item.artifact_path, state.spec, item.shard, &artifact, &why)) {
        state.complete(item, std::move(artifact), /*counts_as_computed=*/true, running.size());
      } else {
        std::string reason =
            timed_out ? "timed out after " + std::to_string(state.config.timeout_seconds) +
                            "s (" + support::describe_exit(status) + ")"
                      : "worker " + support::describe_exit(status);
        state.fail_or_retry(std::move(item), reason + "; " + why);
      }
    }
    if (!reaped) {
      state.progress(false, running.size());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

// --- persistent-session mode ----------------------------------------------

void run_sessions(RunState& state, const WorkerCommand& base, Transport& transport) {
  WorkerCommand command = base;
  command.session_argv = session_worker_argv(base, state.plan.jobs);
  std::vector<std::unique_ptr<WorkerSession>> sessions;
  sessions.reserve(state.plan.workers);
  // A session that dies before completing a handshake is not tied to any
  // work item, so the per-item retry budget cannot bound it. This counter
  // can: `retries + 1` consecutive handshake failures with no success in
  // between means the worker command itself is broken — a setup error.
  unsigned handshake_failures = 0;
  std::string last_handshake_error = "worker never started";

  auto spawn_ready_count = [&] {
    std::size_t n = 0;
    for (const auto& session : sessions) {
      if (session->pre_ready() || session->state() == WorkerSession::State::kIdle) ++n;
    }
    return n;
  };
  auto busy_count = [&] {
    std::size_t n = 0;
    for (const auto& session : sessions) {
      if (session->state() == WorkerSession::State::kBusy) ++n;
    }
    return n;
  };

  while (state.queue.pending() > 0 || busy_count() > 0) {
    if (handshake_failures > state.config.retries) {
      // The worker command itself is broken (wrong binary, version skew,
      // crash at startup): no amount of per-item retrying can make
      // progress. Tear the fleet down before surfacing the setup error.
      for (auto& session : sessions) session->shutdown(state.config.shutdown_grace);
      throw support::CicError("persistent workers failed " +
                              std::to_string(handshake_failures) +
                              " consecutive handshakes; last: " + last_handshake_error);
    }

    // Top up the fleet: one session per worker slot, but never more sessions
    // than there is pending work for (a session serves many items, so idle
    // extras would only pay a useless golden derivation).
    while (sessions.size() < state.plan.workers &&
           spawn_ready_count() < state.queue.pending()) {
      try {
        sessions.push_back(std::make_unique<WorkerSession>(
            transport.launch_session(command), state.config.golden.get(),
            deadline_after(state.config.timeout_seconds), state.config.shutdown_grace));
        ++state.result.launched;
      } catch (const support::CicError& error) {
        ++handshake_failures;
        last_handshake_error = std::string("spawn failed: ") + error.what();
        break;
      }
    }

    // Hand pending items to idle sessions.
    for (auto& session : sessions) {
      if (session->state() != WorkerSession::State::kIdle) continue;
      WorkItem item;
      if (!state.queue.try_pop(&item)) break;
      if (!session->assign(item, state.config.force,
                           deadline_after(state.config.timeout_seconds))) {
        // The write failed, so the item never reached the worker; assign()
        // left it with us — put it back through the budget.
        state.fail_or_retry(std::move(item), "session pipe write failed");
      }
    }

    // Pump every session; react to at most one event each per iteration.
    bool advanced = false;
    const Clock::time_point now = Clock::now();
    for (auto& session : sessions) {
      if (session->state() == WorkerSession::State::kDead) continue;
      const bool was_pre_ready = session->pre_ready();
      WorkerSession::Event event = session->pump(state.spec, now);
      switch (event.kind) {
        case WorkerSession::Event::Kind::kNone:
          break;
        case WorkerSession::Event::Kind::kReady:
          advanced = true;
          handshake_failures = 0;
          if (event.golden == "shipped") {
            ++state.result.golden_shipped;
          } else if (event.golden == "cached") {
            ++state.result.golden_cached;
          } else if (event.golden == "derived") {
            ++state.result.golden_derived;
          }
          break;
        case WorkerSession::Event::Kind::kDone: {
          advanced = true;
          state.result.worker_wall_ms += event.wall_ms;
          WorkItem item = session->take_item();
          std::string why;
          exp::ShardArtifact artifact;
          if (artifact_is_valid(item.artifact_path, state.spec, item.shard, &artifact, &why)) {
            if (event.reused) ++state.result.reused;
            state.complete(item, std::move(artifact), /*counts_as_computed=*/!event.reused,
                           busy_count());
          } else {
            // The worker *said* done but the artifact fails validation: a
            // failed attempt, but the session keeps its slot — the artifact
            // checks, not trust in the ack, protect the merge.
            state.fail_or_retry(std::move(item), "worker acked an invalid artifact; " + why);
          }
          break;
        }
        case WorkerSession::Event::Kind::kError:
          advanced = true;
          state.fail_or_retry(session->take_item(), std::move(event.reason));
          break;
        case WorkerSession::Event::Kind::kFailed:
          advanced = true;
          if (was_pre_ready) {
            ++handshake_failures;
            last_handshake_error = event.reason;
          }
          if (session->has_item()) {
            state.fail_or_retry(session->take_item(),
                                "session failed mid-assignment: " + event.reason);
          }
          break;
      }
    }

    // Cull the dead; replacements spawn at the top of the next iteration.
    std::erase_if(sessions, [](const std::unique_ptr<WorkerSession>& session) {
      return session->state() == WorkerSession::State::kDead;
    });

    if (!advanced) {
      state.progress(false, busy_count());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  for (auto& session : sessions) session->shutdown(state.config.shutdown_grace);
}

}  // namespace

std::string shard_artifact_path(const std::string& dir, const std::string& sweep,
                                const exp::Shard& shard) {
  return dir + "/" + sweep + "-" + std::to_string(shard.index) + "of" +
         std::to_string(shard.count) + ".shard.json";
}

DispatchPlan plan_dispatch(const exp::SweepSpec& spec, const WorkerCommand& base,
                           const Transport& transport, const DispatchConfig& config) {
  support::check(spec.cells > 0, "dispatch needs a sweep with at least one cell");
  DispatchPlan plan;
  plan.workers = config.workers != 0 ? config.workers : support::resolve_jobs(0);
  // Over-decompose by default: 4 items per worker slot keeps every slot busy
  // until the end (a slow shard overlaps the others' tails) while still
  // batching many cells per assignment. Never more shards than cells — an
  // empty shard is work scheduled for nothing.
  plan.shards = config.shards != 0
                    ? config.shards
                    : static_cast<unsigned>(
                          std::min<std::size_t>(spec.cells, std::size_t{plan.workers} * 4));
  // Split the host's cores between concurrent workers unless told otherwise.
  plan.jobs = config.jobs_per_worker != 0
                  ? config.jobs_per_worker
                  : std::max(1U, support::resolve_jobs(0) / std::max(1U, plan.workers));
  plan.persistent =
      config.persistent && !base.session_argv.empty() && transport.supports_sessions();
  return plan;
}

std::vector<std::string> exec_worker_argv(const WorkerCommand& base, unsigned jobs,
                                          const WorkItem& item, bool force) {
  std::vector<std::string> argv = base.argv;
  argv.insert(argv.end(),
              {"--jobs", std::to_string(jobs), "--shard",
               std::to_string(item.shard.index) + "/" + std::to_string(item.shard.count),
               "--out", item.artifact_path});
  if (force) argv.emplace_back("--force");
  return argv;
}

std::vector<std::string> session_worker_argv(const WorkerCommand& base, unsigned jobs) {
  std::vector<std::string> argv = base.session_argv;
  argv.insert(argv.end(), {"--jobs", std::to_string(jobs)});
  return argv;
}

DispatchResult dispatch_sweep(const exp::SweepSpec& spec, const WorkerCommand& base,
                              Transport& transport, const DispatchConfig& config) {
  support::check(!base.argv.empty(), "dispatch needs a worker command");
  const DispatchPlan plan = plan_dispatch(spec, base, transport, config);

  const std::string dir = config.artifact_dir.empty() ? std::string(".") : config.artifact_dir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  support::check(!ec && std::filesystem::is_directory(dir),
                 "cannot create artifact directory '" + dir + "'");

  DispatchResult result;
  result.shard_count = plan.shards;
  result.persistent = plan.persistent;

  RunState state(spec, config, plan, result);
  // Resume pre-pass: shards whose artifacts already validate merge before
  // any worker or session is spawned, so a fully-resumed campaign costs zero
  // process launches and a partially-resumed one sizes its fleet to the work
  // actually left.
  for (unsigned i = 1; i <= plan.shards; ++i) {
    const exp::Shard shard{i, plan.shards};
    WorkItem item{shard, shard_artifact_path(dir, spec.sweep, shard), 0};
    exp::ShardArtifact artifact;
    std::string why;
    if (!config.force &&
        artifact_is_valid(item.artifact_path, spec, shard, &artifact, &why)) {
      state.merge.add(std::move(artifact));
      ++result.reused;
      ++state.resumed_done;
      state.progress(false, 0);  // throttled: a full resume lands all at once
    } else {
      state.queue.push(std::move(item));
    }
  }

  if (state.queue.pending() > 0) {
    if (plan.persistent) {
      run_sessions(state, base, transport);
    } else {
      run_exec(state, base, transport);
    }
  }
  state.progress(true, 0);

  result.failures = state.queue.failures();
  result.ok = result.failures.empty();
  if (result.ok) {
    // Same merge the `cicmon merge` path performs, already streamed shard by
    // shard — finalize is just the completeness check plus handing the cells
    // over, byte-identical to a direct single-process run.
    result.cells = std::move(state.merge).finalize();
  }
  return result;
}

}  // namespace cicmon::dist
