#include "dist/orchestrator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <utility>

#include "support/error.h"
#include "support/parallel.h"
#include "support/subprocess.h"

namespace cicmon::dist {
namespace {

using Clock = std::chrono::steady_clock;

// One spawned worker the poll loop is watching.
struct Running {
  WorkItem item;
  support::ChildProcess child;
  Clock::time_point deadline;  // Clock::time_point::max() when no timeout
};

// The merge-time artifact checks, applied per item the moment its worker
// exits: the file must decode as a cicmon-shard-v1 document (catching
// truncation and tampering) and match (spec, shard) exactly (catching a
// transport that ran the wrong command). On success the decoded artifact is
// handed to `out` so the final merge never re-reads the file; on failure
// `why` reports the violation for the retry log.
bool artifact_is_valid(const std::string& path, const exp::SweepSpec& spec,
                       const exp::Shard& shard, exp::ShardArtifact* out, std::string* why) {
  try {
    exp::ShardArtifact artifact = exp::load_shard_artifact(path);
    if (exp::artifact_matches(artifact, spec, shard)) {
      *out = std::move(artifact);
      return true;
    }
    *why = "artifact '" + path + "' does not match the sweep parameters";
  } catch (const support::CicError& error) {
    *why = error.what();
  }
  return false;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::string shard_artifact_path(const std::string& dir, const std::string& sweep,
                                const exp::Shard& shard) {
  return dir + "/" + sweep + "-" + std::to_string(shard.index) + "of" +
         std::to_string(shard.count) + ".shard.json";
}

DispatchResult dispatch_sweep(const exp::SweepSpec& spec, const WorkerCommand& base,
                              Transport& transport, const DispatchConfig& config) {
  support::check(spec.cells > 0, "dispatch needs a sweep with at least one cell");
  support::check(!base.argv.empty(), "dispatch needs a worker command");
  const unsigned workers = config.workers != 0 ? config.workers : support::resolve_jobs(0);
  // Over-decompose by default: 4 items per worker slot keeps every slot busy
  // until the end (a slow shard overlaps the others' tails) while still
  // batching many cells per process. Never more shards than cells — an empty
  // shard is a process spawned for nothing.
  const unsigned shards =
      config.shards != 0
          ? config.shards
          : static_cast<unsigned>(std::min<std::size_t>(spec.cells, std::size_t{workers} * 4));
  // Split the host's cores between concurrent workers unless told otherwise.
  const unsigned jobs = config.jobs_per_worker != 0
                            ? config.jobs_per_worker
                            : std::max(1U, support::resolve_jobs(0) / std::max(1U, workers));

  const std::string dir = config.artifact_dir.empty() ? std::string(".") : config.artifact_dir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  support::check(!ec && std::filesystem::is_directory(dir),
                 "cannot create artifact directory '" + dir + "'");

  DispatchResult result;
  result.shard_count = shards;

  WorkQueue queue(config.retries + 1);
  for (unsigned i = 1; i <= shards; ++i) {
    const exp::Shard shard{i, shards};
    queue.push(WorkItem{shard, shard_artifact_path(dir, spec.sweep, shard), 0});
  }

  const Clock::time_point start = Clock::now();
  Clock::time_point last_progress = start;
  std::size_t computed = 0;  // completions that actually ran a worker (for ETA)
  std::vector<Running> running;
  running.reserve(workers);
  // Validated artifacts by shard index, filled at reuse/reap time so the
  // final merge never parses a file twice.
  std::vector<exp::ShardArtifact> validated(shards);

  auto progress = [&](bool force) {
    if (!config.progress) return;
    const Clock::time_point now = Clock::now();
    if (!force && now - last_progress < std::chrono::milliseconds(500)) return;
    last_progress = now;
    std::string eta = "?";
    if (computed > 0) {
      const std::size_t remaining = queue.total() - queue.done() - queue.failures().size();
      eta = std::to_string(static_cast<long>(seconds_since(start) / static_cast<double>(computed) *
                                             static_cast<double>(remaining))) +
            "s";
    }
    std::fprintf(stderr, "dispatch: %zu/%zu shards done (%zu reused), %zu running, %zu retried, ETA %s\n",
                 queue.done(), queue.total(), result.reused, running.size(), result.retried,
                 eta.c_str());
  };

  auto fail_or_retry = [&](WorkItem item, std::string reason) {
    if (queue.retry(std::move(item), std::move(reason))) ++result.retried;
  };

  while (true) {
    // Fill free worker slots from the queue — the pull half of the load
    // balancing. Resume is checked at pull time so a re-dispatch of a
    // half-finished campaign completes reused items without spawning.
    while (running.size() < workers) {
      WorkItem item;
      if (!queue.try_pop(&item)) break;
      std::string why;
      if (!config.force && item.attempts == 1 &&
          artifact_is_valid(item.artifact_path, spec, item.shard,
                            &validated[item.shard.index - 1], &why)) {
        queue.complete(item);
        ++result.reused;
        progress(false);  // throttled: a full resume reuses every shard at once
        continue;
      }
      WorkerCommand command = base;
      command.argv.insert(command.argv.end(),
                          {"--jobs", std::to_string(jobs), "--shard",
                           std::to_string(item.shard.index) + "/" + std::to_string(item.shard.count),
                           "--out", item.artifact_path});
      if (config.force) command.argv.emplace_back("--force");
      support::ChildProcess child;
      try {
        child = transport.launch(command, item);
      } catch (const support::CicError& error) {
        fail_or_retry(std::move(item), std::string("launch failed: ") + error.what());
        continue;
      }
      ++result.launched;
      const Clock::time_point deadline =
          config.timeout_seconds > 0
              ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(config.timeout_seconds))
              : Clock::time_point::max();
      running.push_back(Running{std::move(item), child, deadline});
    }
    if (running.empty() && queue.pending() == 0) break;

    // Poll the fleet. The exit status only reports worker/transport health;
    // the artifact is the real output, so it is validated either way — a
    // worker killed after its atomic artifact rename still counts as done,
    // and a clean exit with a bad artifact is still a failed attempt.
    bool reaped = false;
    for (std::size_t i = 0; i < running.size();) {
      Running& slot = running[i];
      int status = 0;
      bool exited = slot.child.poll(&status);
      bool timed_out = false;
      if (!exited && Clock::now() >= slot.deadline) {
        slot.child.kill_hard();
        status = slot.child.wait();
        exited = true;
        timed_out = true;
      }
      if (!exited) {
        ++i;
        continue;
      }
      reaped = true;
      WorkItem item = std::move(slot.item);
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
      std::string why;
      if (artifact_is_valid(item.artifact_path, spec, item.shard,
                            &validated[item.shard.index - 1], &why)) {
        queue.complete(item);
        ++computed;
      } else {
        std::string reason = timed_out ? "timed out after " +
                                             std::to_string(config.timeout_seconds) + "s (" +
                                             support::describe_exit(status) + ")"
                                       : "worker " + support::describe_exit(status);
        fail_or_retry(std::move(item), reason + "; " + why);
      }
      progress(false);  // throttled: many small shards can reap back to back
    }
    if (!reaped) {
      progress(false);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  progress(true);

  result.failures = queue.failures();
  result.ok = result.failures.empty();
  if (result.ok) {
    // Same merge path as `cicmon merge`, fed the artifacts already decoded
    // and validated at reuse/reap time, so the caller renders output
    // byte-identical to a direct single-process run without re-reading any
    // file.
    result.cells = exp::merge_artifacts(validated);
  }
  return result;
}

}  // namespace cicmon::dist
