// VHDL sketch emitter — the "ASIP Meister HDL generator" step of Figure 5.
//
// The real flow captures the ISA + monitoring microoperations in a GUI and
// generates synthesizable VHDL. This emitter renders the same CIC hardware
// (STA/RHASH registers, HASHFU, IHT CAM, comparator, exception port) as a
// compact VHDL entity set so the design-flow example can show the artefact
// the flow would hand to synthesis. The area/timing numbers come from the
// analytical model (area_model.h), not from this text.
#pragma once

#include <string>

#include "hash/hash_unit.h"

namespace cicmon::area {

// Complete monitoring-subsystem sketch for the given configuration.
std::string emit_vhdl_sketch(unsigned iht_entries, hash::HashKind hash_kind);

}  // namespace cicmon::area
