// Analytical standard-cell area/timing model (the Table 2 substitute).
//
// The paper synthesizes ASIP-Meister-generated VHDL with Synopsys DC and a
// TSMC 0.18µ library. Neither tool is available offline, so Table 2 is
// reproduced with a gate-equivalent (GE, NAND2-equivalent) inventory of the
// same structures:
//
//  * a baseline single-issue 6-stage PISA datapath (register file, ALU,
//    shifter, multiplier/divider, pipeline latches, control), calibrated so
//    its cell area lands on the paper's 0.18µ scale (~2.1M area units);
//  * the Code Integrity Checker: per-IHT-entry CAM storage + match logic +
//    LRU state, plus the fixed HASHFU / STA / RHASH / comparator / control.
//
// Two properties of Table 2 are structural, and the model reproduces both
// mechanically: total area grows linearly in the entry count, and the cycle
// time does not move because the monitoring paths (IF: fetch + hash step;
// ID: decode + CAM match) stay shorter than the EX-stage critical path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hash/hash_unit.h"

namespace cicmon::area {

// 0.18µ-class technology constants.
struct TechLibrary {
  double um2_per_ge = 10.0;        // cell area of one NAND2 equivalent
  double ns_per_gate_delay = 0.14; // loaded gate delay

  static TechLibrary tsmc180() { return {}; }
};

struct Component {
  std::string name;
  double gate_equivalents = 0.0;
};

struct AreaBreakdown {
  std::vector<Component> components;

  double total_ge() const;
  void add(std::string name, double ge) { components.push_back({std::move(name), ge}); }
  // Merges another breakdown under a prefix ("cic/..." etc.).
  void absorb(const AreaBreakdown& other, const std::string& prefix);
};

// Gate-equivalent inventory of the baseline 6-stage PISA datapath.
AreaBreakdown baseline_datapath();

// Inventory of the Code Integrity Checker for a given IHT size and HASHFU.
AreaBreakdown cic_inventory(unsigned iht_entries, const hash::HashHwProfile& hash_profile);

// Stage path delays in gate-delay units; min period is the max of them.
struct TimingPaths {
  double if_path = 0.0;   // fetch + (when monitored) the HASHFU step
  double id_path = 0.0;   // decode + (when monitored) CAM match + compare
  double ex_path = 0.0;   // register read + ALU + bypass — the critical path
  double mem_path = 0.0;

  double critical() const;
};

TimingPaths stage_paths(bool monitored, unsigned iht_entries,
                        const hash::HashHwProfile& hash_profile);

// A synthesized design point: the rows of Table 2.
struct DesignReport {
  std::string name;
  double cell_area_um2 = 0.0;
  double min_period_ns = 0.0;
  double area_overhead_vs_baseline = 0.0;   // fraction; 0 for the baseline
  double period_overhead_vs_baseline = 0.0; // fraction
};

// Evaluates the baseline (iht_entries == 0) or a monitored variant.
DesignReport evaluate_design(const TechLibrary& tech, unsigned iht_entries,
                             hash::HashKind hash_kind);

// All four Table 2 rows (baseline, 1, 8, 16) plus any extra entry counts.
std::vector<DesignReport> table2_rows(const TechLibrary& tech,
                                      const std::vector<unsigned>& entry_counts,
                                      hash::HashKind hash_kind);

}  // namespace cicmon::area
