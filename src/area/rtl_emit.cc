#include "area/rtl_emit.h"

#include <sstream>

namespace cicmon::area {
namespace {

const char* hash_step_expression(hash::HashKind kind) {
  switch (kind) {
    case hash::HashKind::kXor: return "rhash_q xor instr_word";
    case hash::HashKind::kAdd: return "std_logic_vector(unsigned(rhash_q) + unsigned(instr_word))";
    case hash::HashKind::kRotXor:
    case hash::HashKind::kRotXorKeyed:
      return "(rhash_q(30 downto 0) & rhash_q(31)) xor instr_word";
    case hash::HashKind::kFletcher32: return "fletcher_step(rhash_q, instr_word)";
    case hash::HashKind::kCrc32: return "crc32_word(rhash_q, instr_word)";
    case hash::HashKind::kMulXor: return "mulxor_step(rhash_q, instr_word)";
  }
  return "rhash_q xor instr_word";
}

}  // namespace

std::string emit_vhdl_sketch(unsigned iht_entries, hash::HashKind hash_kind) {
  std::ostringstream out;
  out << "-- Code Integrity Checker, generated sketch (" << iht_entries
      << "-entry IHT, HASHFU = " << hash::hash_kind_name(hash_kind) << ")\n"
      << "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n";

  out << "entity cic_regs is\n"
         "  port (clk, rst      : in  std_logic;\n"
         "        sta_we        : in  std_logic;  -- [start==0] guard resolved upstream\n"
         "        current_pc    : in  std_logic_vector(31 downto 0);\n"
         "        rhash_we      : in  std_logic;\n"
         "        rhash_d       : in  std_logic_vector(31 downto 0);\n"
         "        block_reset   : in  std_logic;  -- Figure 4: STA.reset / RHASH.reset\n"
         "        sta_q, rhash_q: out std_logic_vector(31 downto 0));\n"
         "end cic_regs;\n\n";

  out << "entity hashfu is\n"
         "  port (rhash_q    : in  std_logic_vector(31 downto 0);\n"
         "        instr_word : in  std_logic_vector(31 downto 0);\n"
         "        nhash      : out std_logic_vector(31 downto 0));\n"
         "end hashfu;\n\n"
         "architecture rtl of hashfu is\n"
         "begin\n"
         "  nhash <= "
      << hash_step_expression(hash_kind)
      << ";  -- single-cycle HASHFU.ope (Figure 3)\n"
         "end rtl;\n\n";

  out << "entity ihtbb is\n"
         "  generic (ENTRIES : natural := " << iht_entries << ");\n"
         "  port (clk        : in  std_logic;\n"
         "        lkp_start  : in  std_logic_vector(31 downto 0);  -- STA\n"
         "        lkp_end    : in  std_logic_vector(31 downto 0);  -- PPC\n"
         "        lkp_hash   : in  std_logic_vector(31 downto 0);  -- RHASH\n"
         "        fill_en    : in  std_logic;                      -- OS refill port\n"
         "        fill_tuple : in  std_logic_vector(95 downto 0);\n"
         "        found      : out std_logic;                      -- address CAM hit\n"
         "        match      : out std_logic);                     -- hash agrees\n"
         "end ihtbb;\n\n"
         "architecture rtl of ihtbb is\n"
         "  type tuple_array is array (0 to ENTRIES-1) of std_logic_vector(95 downto 0);\n"
         "  signal entries_q : tuple_array;\n"
         "  signal valid_q   : std_logic_vector(ENTRIES-1 downto 0);\n"
         "begin\n"
         "  -- parallel (Addst, Addend) match; hash comparison on the hit way\n"
         "  -- (COMP of Figure 2); LRU stamps updated on address match.\n"
         "end rtl;\n\n";

  out << "entity cic_exceptions is\n"
         "  port (found, match : in  std_logic;\n"
         "        is_flow_ctl  : in  std_logic;  -- ID-stage qualifier\n"
         "        exception0   : out std_logic;  -- hash miss  -> OS FHT search\n"
         "        exception1   : out std_logic); -- mismatch   -> terminate\n"
         "end cic_exceptions;\n\n"
         "architecture rtl of cic_exceptions is\n"
         "begin\n"
         "  exception0 <= is_flow_ctl and not found;\n"
         "  exception1 <= is_flow_ctl and found and not match;\n"
         "end rtl;\n";

  return out.str();
}

}  // namespace cicmon::area
