#include "area/area_model.h"

#include <algorithm>

#include "support/error.h"

namespace cicmon::area {
namespace {

// Textbook NAND2-equivalent costs for the component library.
constexpr double kGePerFlop = 5.0;
constexpr double kGePerSramBit = 1.5;   // 6T cell + array overhead, GE-equivalent
constexpr double kGePerCamBit = 3.0;    // storage + match transistor pair
constexpr double kGePerAdderBit = 7.0;
constexpr double kGePerComparatorBit = 3.0;
constexpr double kGePerMuxBit = 2.0;

// Synthesis of ASIP-Meister-generated RTL is flop-heavy and unoptimized; the
// paper's own Table 2 slope (≈37k area units per IHT entry at 0.18µ, i.e.
// ≈3.7k GE/entry against this library's ≈0.77k hand-inventory estimate)
// implies this factor over a hand-crafted design. Applied to the CIC
// components only, so the calibration is visible and ablatable.
constexpr double kGeneratedRtlFactor = 4.8;

}  // namespace

double AreaBreakdown::total_ge() const {
  double total = 0.0;
  for (const Component& c : components) total += c.gate_equivalents;
  return total;
}

void AreaBreakdown::absorb(const AreaBreakdown& other, const std::string& prefix) {
  for (const Component& c : other.components) {
    components.push_back({prefix + c.name, c.gate_equivalents});
  }
}

AreaBreakdown baseline_datapath() {
  AreaBreakdown b;
  // Core datapath.
  b.add("gpr-file 32x32 (2R/1W, flop-based)", 32 * 32 * (kGePerFlop + 3.0) + 500);
  b.add("alu 32b (add/sub/logic/slt)", 1400);
  b.add("barrel shifter 32b", 900);
  b.add("multiplier 32x32", 18000);
  b.add("divider 32b (iterative)", 6200);
  b.add("pc / ppc / hi / lo registers", 4 * 32 * kGePerFlop);
  b.add("pipeline latches (6 stages x ~128b)", 6 * 128 * kGePerFlop);
  b.add("decode + control", 3500);
  b.add("branch/target adders", 2 * 32 * kGePerAdderBit);
  b.add("bypass/select muxes", 6 * 32 * kGePerMuxBit * 4);
  // On-chip memories (the dominant cell area, as in the paper's netlist).
  b.add("i-mem 8KiB", 8 * 1024 * 8 * kGePerSramBit);
  b.add("d-mem 8KiB", 8 * 1024 * 8 * kGePerSramBit);
  return b;
}

AreaBreakdown cic_inventory(unsigned iht_entries, const hash::HashHwProfile& hash_profile) {
  support::check(iht_entries >= 1, "CIC needs at least one IHT entry");
  AreaBreakdown b;
  // Fixed logic, present at any table size.
  b.add("sta register 32b", 32 * kGePerFlop * kGeneratedRtlFactor);
  b.add("rhash register 32b", 32 * kGePerFlop * kGeneratedRtlFactor);
  b.add("hashfu step logic", hash_profile.gate_equivalents * kGeneratedRtlFactor);
  b.add("lookup comparator 32b (hash)", 32 * kGePerComparatorBit * kGeneratedRtlFactor);
  b.add("exception + control fsm", 450 * kGeneratedRtlFactor);
  // Per-entry CAM cost: 96b of CAM storage (start, end, hash), the address
  // match network, the result priority mux, and LRU state + update logic.
  const double per_entry =
      (96 * kGePerCamBit +                // storage + match cells
       64 * kGePerComparatorBit +         // address-pair match reduction
       32 * kGePerMuxBit +                // hash read-out mux slice
       8 * kGePerFlop + 180) *            // LRU stamp + replacement logic
      kGeneratedRtlFactor;
  b.add("iht entries x" + std::to_string(iht_entries), per_entry * iht_entries);
  return b;
}

double TimingPaths::critical() const {
  return std::max({if_path, id_path, ex_path, mem_path});
}

TimingPaths stage_paths(bool monitored, unsigned iht_entries,
                        const hash::HashHwProfile& hash_profile) {
  TimingPaths p;
  // Gate-delay inventories of the stage-limiting paths. The EX path of the
  // generated single-issue core dominates (the paper measures ~37.9ns at
  // 0.18µ), so IF/ID have slack the monitoring logic can hide in (§4.3.1).
  p.ex_path = 270;          // regfile read + ripple ALU + bypass + setup
  p.mem_path = 180;         // address add + SRAM access
  p.if_path = 120;          // i-mem access + IR setup
  p.id_path = 140;          // decode tree + register fetch
  if (monitored) {
    // HASHFU folds the new word into RHASH after the fetch mux.
    p.if_path += hash_profile.depth_gate_delays;
    // CAM match: 96b XOR + AND-reduction (~log depth) + priority mux over
    // the entries + hash comparator.
    const double match_tree = 7;  // log2(96) rounding
    const double priority = iht_entries > 1 ? 2.0 * (31 - __builtin_clz(iht_entries)) : 2.0;
    p.id_path += match_tree + priority + 6 /* hash compare + exception gate */;
  }
  return p;
}

DesignReport evaluate_design(const TechLibrary& tech, unsigned iht_entries,
                             hash::HashKind hash_kind) {
  const bool monitored = iht_entries > 0;
  AreaBreakdown inventory = baseline_datapath();
  hash::HashHwProfile profile;
  if (monitored) {
    profile = hash::make_hash_unit(hash_kind)->hw_profile();
    inventory.absorb(cic_inventory(iht_entries, profile), "cic/");
  }

  DesignReport report;
  report.name = monitored ? "cic-" + std::to_string(iht_entries) : "baseline";
  report.cell_area_um2 = inventory.total_ge() * tech.um2_per_ge;
  report.min_period_ns =
      stage_paths(monitored, std::max(1U, iht_entries), profile).critical() *
      tech.ns_per_gate_delay;
  return report;
}

std::vector<DesignReport> table2_rows(const TechLibrary& tech,
                                      const std::vector<unsigned>& entry_counts,
                                      hash::HashKind hash_kind) {
  std::vector<DesignReport> rows;
  rows.push_back(evaluate_design(tech, 0, hash_kind));
  // Copy, not reference: later push_backs may reallocate `rows`.
  const DesignReport base = rows.front();
  for (unsigned entries : entry_counts) {
    DesignReport r = evaluate_design(tech, entries, hash_kind);
    r.area_overhead_vs_baseline = r.cell_area_um2 / base.cell_area_um2 - 1.0;
    r.period_overhead_vs_baseline = r.min_period_ns / base.min_period_ns - 1.0;
    rows.push_back(r);
  }
  return rows;
}

}  // namespace cicmon::area
