#include "exp/sweep.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "support/error.h"
#include "support/json.h"
#include "support/parallel.h"
#include "support/strings.h"

namespace cicmon::exp {
namespace {

constexpr std::string_view kSchema = "cicmon-shard-v1";

std::string read_file(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  support::check(in != nullptr, "cannot open shard artifact '" + path + "'");
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, in)) > 0) text.append(buffer, got);
  const bool error = std::ferror(in) != 0;
  std::fclose(in);
  support::check(!error, "cannot read shard artifact '" + path + "'");
  return text;
}

void write_file_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  support::check(out != nullptr, "cannot write shard artifact '" + tmp + "'");
  const bool wrote = std::fwrite(text.data(), 1, text.size(), out) == text.size();
  const bool closed = std::fclose(out) == 0;
  support::check(wrote && closed, "cannot write shard artifact '" + tmp + "'");
  support::check(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "cannot move shard artifact into place at '" + path + "'");
}

}  // namespace

std::string fmt_f64(double value) {
  char buffer[64];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  return std::string(buffer, result.ptr);
}

double parse_f64(std::string_view text) {
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  support::check(end == copy.c_str() + copy.size() && !copy.empty(),
                 "malformed double '" + copy + "'");
  return value;
}

Shard parse_shard(std::string_view text) {
  const std::size_t slash = text.find('/');
  support::check(slash != std::string_view::npos, "--shard expects I/N, got '" +
                                                      std::string(text) + "'");
  auto parse_part = [&](std::string_view part) -> unsigned {
    std::uint64_t value = 0;
    support::check(support::parse_u64(part, &value) && value <= 0xFFFF'FFFFULL,
                   "--shard expects I/N, got '" + std::string(text) + "'");
    return static_cast<unsigned>(value);
  };
  Shard shard;
  shard.index = parse_part(text.substr(0, slash));
  shard.count = parse_part(text.substr(slash + 1));
  support::check(shard.count >= 1 && shard.index >= 1 && shard.index <= shard.count,
                 "--shard needs 1 <= I <= N, got '" + std::string(text) + "'");
  return shard;
}

std::vector<CellResult> run_cells(const SweepSpec& spec, const Shard& shard, unsigned jobs) {
  std::vector<std::size_t> owned;
  for (std::size_t cell = 0; cell < spec.cells; ++cell) {
    if (owns_cell(shard, cell)) owned.push_back(cell);
  }
  std::vector<CellResult> results(spec.cells);
  support::parallel_for(owned.size(), jobs,
                        [&](std::size_t i) { results[owned[i]] = spec.run_cell(owned[i]); });
  return results;
}

std::vector<CellResult> run_all(const SweepSpec& spec, unsigned jobs) {
  return run_cells(spec, Shard{1, 1}, jobs);
}

std::string encode_shard_artifact(const SweepSpec& spec, const Shard& shard,
                                  const std::vector<CellResult>& results) {
  support::check(results.size() == spec.cells,
                 "encode_shard_artifact: result vector does not match the cell grid");
  support::JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value(kSchema);
  json.key("sweep");
  json.value(spec.sweep);
  json.key("params");
  json.begin_object();
  for (const auto& [name, value] : spec.params) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.key("shard");
  json.value_u64(shard.index);
  json.key("shard_count");
  json.value_u64(shard.count);
  json.key("total_cells");
  json.value_u64(spec.cells);
  json.key("cells");
  json.begin_array();
  for (std::size_t cell = 0; cell < spec.cells; ++cell) {
    if (!owns_cell(shard, cell)) continue;
    json.begin_object();
    json.key("index");
    json.value_u64(cell);
    json.key("key");
    json.value(spec.cell_key ? spec.cell_key(cell) : std::to_string(cell));
    json.key("u64");
    json.begin_array();
    for (const std::uint64_t v : results[cell].u64) json.value_u64(v);
    json.end_array();
    json.key("f64");
    json.begin_array();
    for (const double v : results[cell].f64) json.value(v);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.take();
}

ShardArtifact decode_shard_artifact(std::string_view text) {
  const support::JsonValue root = support::parse_json(text);
  support::check(root.at("schema").as_string() == kSchema,
                 "not a " + std::string(kSchema) + " artifact");
  ShardArtifact artifact;
  artifact.sweep = root.at("sweep").as_string();
  for (const auto& [name, value] : root.at("params").as_object()) {
    artifact.params.emplace_back(name, value.as_string());
  }
  artifact.shard.index = static_cast<unsigned>(root.at("shard").as_u64());
  artifact.shard.count = static_cast<unsigned>(root.at("shard_count").as_u64());
  artifact.total_cells = root.at("total_cells").as_u64();
  support::check(artifact.shard.count >= 1 && artifact.shard.index >= 1 &&
                     artifact.shard.index <= artifact.shard.count,
                 "artifact has invalid shard coordinates");
  std::size_t previous = 0;
  bool first = true;
  for (const support::JsonValue& entry : root.at("cells").as_array()) {
    ShardArtifact::Cell cell;
    cell.index = entry.at("index").as_u64();
    cell.key = entry.at("key").as_string();
    for (const support::JsonValue& v : entry.at("u64").as_array()) {
      cell.result.u64.push_back(v.as_u64());
    }
    for (const support::JsonValue& v : entry.at("f64").as_array()) {
      cell.result.f64.push_back(v.as_f64());
    }
    support::check(cell.index < artifact.total_cells, "artifact cell index out of range");
    support::check(owns_cell(artifact.shard, cell.index),
                   "artifact contains a cell its shard does not own");
    support::check(first || cell.index > previous, "artifact cells out of order");
    previous = cell.index;
    first = false;
    artifact.cells.push_back(std::move(cell));
  }
  // Completeness: the shard must carry every cell it owns, or a crashed
  // writer could masquerade as a short shard. O(1) — a tampered total_cells
  // must not buy an arbitrarily long loop.
  const std::size_t expected = owned_cell_count(artifact.shard, artifact.total_cells);
  support::check(artifact.cells.size() == expected,
                 "artifact is incomplete: has " + std::to_string(artifact.cells.size()) +
                     " of " + std::to_string(expected) + " owned cells");
  return artifact;
}

void write_shard_artifact(const std::string& path, const SweepSpec& spec, const Shard& shard,
                          const std::vector<CellResult>& results) {
  write_file_atomic(path, encode_shard_artifact(spec, shard, results));
}

ShardArtifact load_shard_artifact(const std::string& path) {
  try {
    return decode_shard_artifact(read_file(path));
  } catch (const support::CicError& error) {
    throw support::CicError("corrupt shard artifact '" + path + "': " + error.what());
  }
}

bool artifact_matches(const ShardArtifact& artifact, const SweepSpec& spec,
                      const Shard& shard) {
  return artifact.sweep == spec.sweep && artifact.params == spec.params &&
         artifact.shard.index == shard.index && artifact.shard.count == shard.count &&
         artifact.total_cells == spec.cells;
}

void MergeState::add(ShardArtifact artifact) {
  // Validate the newcomer fully before mutating anything — including the
  // head state a first artifact would establish — so a rejected artifact
  // leaves the merged state exactly as it was (the orchestrator retries
  // that shard and keeps streaming the others).
  const bool first = shard_count_ == 0;
  if (!first) {
    support::check(artifact.sweep == sweep_, "cannot merge artifacts from different sweeps ('" +
                                                 sweep_ + "' vs '" + artifact.sweep + "')");
    support::check(artifact.params == params_,
                   "cannot merge artifacts with different sweep parameters");
    support::check(artifact.shard.count == shard_count_,
                   "cannot merge artifacts from different shard counts");
    support::check(artifact.total_cells == covered_.size(),
                   "cannot merge artifacts with different cell grids");
  }
  support::check(artifact.shard.index >= 1 && artifact.shard.index <= artifact.shard.count,
                 "artifact has invalid shard coordinates");
  support::check(first || !shard_merged_[artifact.shard.index - 1],
                 "shard " + std::to_string(artifact.shard.index) + "/" +
                     std::to_string(artifact.shard.count) + " is covered by two artifacts");
  // Cells must be strictly increasing (the decode_shard_artifact invariant):
  // that excludes intra-artifact duplicates, which would otherwise let
  // cells_merged_ overcount and finalize() miss a genuinely uncovered cell.
  std::size_t previous = 0;
  bool first_cell = true;
  for (const ShardArtifact::Cell& cell : artifact.cells) {
    support::check(cell.index < artifact.total_cells, "artifact cell index out of range");
    support::check(first_cell || cell.index > previous, "artifact cells out of order");
    support::check(first || !covered_[cell.index],
                   "cell " + std::to_string(cell.index) + " ('" + cell.key +
                       "') is covered by two artifacts — duplicate shard?");
    previous = cell.index;
    first_cell = false;
  }
  if (first) {
    // Everything validated: the first artifact fixes the sweep identity
    // every later add is held to.
    sweep_ = artifact.sweep;
    params_ = artifact.params;
    shard_count_ = artifact.shard.count;
    shard_merged_.assign(shard_count_, false);
    covered_.assign(artifact.total_cells, false);
    results_.resize(artifact.total_cells);
  }
  shard_merged_[artifact.shard.index - 1] = true;
  ++shards_merged_;
  for (ShardArtifact::Cell& cell : artifact.cells) {
    covered_[cell.index] = true;
    results_[cell.index] = std::move(cell.result);
  }
  cells_merged_ += artifact.cells.size();
}

std::string MergeState::progress() const {
  const std::size_t total = covered_.size();
  const double pct = total == 0 ? 0.0
                                : 100.0 * static_cast<double>(cells_merged_) /
                                      static_cast<double>(total);
  char line[96];
  std::snprintf(line, sizeof line, "%zu/%u shards, %zu/%zu cells (%.1f%%)", shards_merged_,
                shard_count_, cells_merged_, total, pct);
  return line;
}

std::string MergeState::progress_table() const {
  std::string table = "shard  cells  state\n";
  for (unsigned index = 1; index <= shard_count_; ++index) {
    const std::size_t cells = owned_cell_count(Shard{index, shard_count_}, covered_.size());
    char row[64];
    std::snprintf(row, sizeof row, "%-5u  %-5zu  %s\n", index, cells,
                  shard_merged_[index - 1] ? "merged" : "pending");
    table += row;
  }
  return table;
}

std::vector<CellResult> MergeState::finalize() && {
  support::check(shard_count_ > 0, "merge needs at least one shard artifact");
  const std::size_t missing = covered_.size() - cells_merged_;
  support::check(missing == 0, std::to_string(missing) + " of " +
                                   std::to_string(covered_.size()) +
                                   " cells missing — pass all " +
                                   std::to_string(shard_count_) + " shard artifacts");
  return std::move(results_);
}

std::vector<CellResult> merge_artifacts(std::vector<ShardArtifact> artifacts) {
  support::check(!artifacts.empty(), "merge needs at least one shard artifact");
  const ShardArtifact& head = artifacts.front();
  // Consistency first, and a cheap completeness count before sizing anything
  // by total_cells: a tampered grid size must fail here, not by allocating a
  // total_cells-proportional buffer that no real artifact set could fill.
  std::size_t provided = 0;
  for (const ShardArtifact& artifact : artifacts) {
    support::check(artifact.sweep == head.sweep,
                   "cannot merge artifacts from different sweeps ('" + head.sweep +
                       "' vs '" + artifact.sweep + "')");
    support::check(artifact.params == head.params,
                   "cannot merge artifacts with different sweep parameters");
    support::check(artifact.shard.count == head.shard.count,
                   "cannot merge artifacts from different shard counts");
    support::check(artifact.total_cells == head.total_cells,
                   "cannot merge artifacts with different cell grids");
    provided += artifact.cells.size();
  }
  if (provided < head.total_cells) {
    throw support::CicError(std::to_string(head.total_cells - provided) + " of " +
                            std::to_string(head.total_cells) + " cells missing — pass all " +
                            std::to_string(head.shard.count) + " shard artifacts");
  }
  MergeState merge;
  for (ShardArtifact& artifact : artifacts) merge.add(std::move(artifact));
  return std::move(merge).finalize();
}

std::vector<CellResult> run_or_load_shard(const SweepSpec& spec, const Shard& shard,
                                          unsigned jobs, const std::string& path, bool force,
                                          bool* reused) {
  if (reused != nullptr) *reused = false;
  if (!force) {
    // Resume: a valid artifact for exactly this (sweep, params, shard) means
    // the work is already done. Anything else — missing file, truncated or
    // tampered JSON, different parameters — falls through to a fresh run
    // that overwrites it.
    try {
      ShardArtifact artifact = load_shard_artifact(path);
      if (artifact_matches(artifact, spec, shard)) {
        std::vector<CellResult> results(spec.cells);
        for (ShardArtifact::Cell& cell : artifact.cells) {
          results[cell.index] = std::move(cell.result);
        }
        if (reused != nullptr) *reused = true;
        return results;
      }
    } catch (const support::CicError&) {
    }
  }
  std::vector<CellResult> results = run_cells(spec, shard, jobs);
  write_shard_artifact(path, spec, shard, results);
  return results;
}

std::string_view param(const SweepParams& params, std::string_view name) {
  for (const auto& [key, value] : params) {
    if (key == name) return value;
  }
  throw support::CicError("shard artifact lacks parameter '" + std::string(name) + "'");
}

}  // namespace cicmon::exp
