// Unified sweep engine: sharded, resumable experiment campaigns.
//
// Every experiment in the paper's evaluation — the Table 1 overhead sweep,
// the Figure 6 miss-rate curves, the block characterisation, the fault
// campaigns, and the throughput bench — is the same shape: a deterministic
// grid of independent cells, each computable from its index alone, whose
// results are gathered in index order and rendered into one table. SweepSpec
// captures that shape once, so scaling features (process sharding, partial-
// summary artifacts, resume, multi-host fan-out) are written here once
// instead of per sweep.
//
// The determinism contract extends support/parallel.h's: a cell's result
// depends only on its index (per-cell RNG streams come from
// support::derive_stream_seed), so
//
//   merge(shard 1/N, ..., shard N/N) == run of shard 1/1
//
// byte-for-byte, for any N and any --jobs value in any process. Shards
// persist their cells as `cicmon-shard-v1` JSON artifacts (support/json.h,
// whose doubles round-trip bit-exactly); merging validates that the
// artifacts are from the same sweep and parameters, cover every cell
// exactly once, and were not truncated or tampered with.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cicmon::exp {

// Mergeable result of one cell: a fixed-shape numeric payload. Each sweep
// defines what the slots mean (cycles, outcome codes, miss rates, ...) and
// decodes rows from them; the engine only moves them around.
struct CellResult {
  std::vector<std::uint64_t> u64;
  std::vector<double> f64;

  bool operator==(const CellResult&) const = default;
};

// Sweep parameters as ordered (name, value) pairs. They are baked into every
// shard artifact and compared at merge/resume time, so partials from a
// different run (other scale, seed, workload, ...) can never be mixed in
// silently. Values must round-trip through text — use fmt_f64 for doubles.
using SweepParams = std::vector<std::pair<std::string, std::string>>;

// Shortest decimal form that parses back to exactly the same double.
std::string fmt_f64(double value);
double parse_f64(std::string_view text);  // throws CicError on malformed input

struct SweepSpec {
  std::string sweep;   // artifact namespace: "table1", "fig6", "campaign", ...
  SweepParams params;  // everything the cell grid was derived from
  std::size_t cells = 0;
  // Stable human-readable key of a cell ("dijkstra/cic16", "trial/000041");
  // recorded next to the cell's payload in artifacts.
  std::function<std::string(std::size_t)> cell_key;
  // Computes one cell. Must depend on the index alone and be safe to call
  // concurrently for distinct indices.
  std::function<CellResult(std::size_t)> run_cell;
};

// Process shard "I/N": 1-based index I of N cooperating processes.
struct Shard {
  unsigned index = 1;
  unsigned count = 1;
};

// Parses "I/N" with 1 <= I <= N; throws CicError otherwise.
Shard parse_shard(std::string_view text);

// Round-robin cell ownership — a disjoint cover of [0, cells) for any N.
constexpr bool owns_cell(const Shard& shard, std::size_t cell) {
  return cell % shard.count == shard.index - 1;
}

// How many of [0, cells) the shard owns, in O(1).
constexpr std::size_t owned_cell_count(const Shard& shard, std::size_t cells) {
  return cells / shard.count + (shard.index - 1 < cells % shard.count ? 1 : 0);
}

// Runs the cells owned by `shard` over `jobs` threads (support::parallel_for
// semantics). The returned vector always has spec.cells slots; cells not
// owned by the shard are left default-constructed.
std::vector<CellResult> run_cells(const SweepSpec& spec, const Shard& shard, unsigned jobs);

// --- cicmon-shard-v1 artifacts -----------------------------------------

struct ShardArtifact {
  std::string sweep;
  SweepParams params;
  Shard shard;
  std::size_t total_cells = 0;
  // (cell index, key, payload) for the owned cells, ascending by index.
  struct Cell {
    std::size_t index = 0;
    std::string key;
    CellResult result;
  };
  std::vector<Cell> cells;
};

// Serializes the shard-owned slice of `results` (indices filtered by
// owns_cell) as a cicmon-shard-v1 document.
std::string encode_shard_artifact(const SweepSpec& spec, const Shard& shard,
                                  const std::vector<CellResult>& results);

// Parses and structurally validates one artifact (schema tag, shard bounds,
// cell ownership and ordering). Throws CicError describing the corruption.
ShardArtifact decode_shard_artifact(std::string_view text);

// File variants. Writing goes through a temp file + rename so a crashed or
// interrupted shard never leaves a truncated artifact behind; loading wraps
// decode errors with the path.
void write_shard_artifact(const std::string& path, const SweepSpec& spec, const Shard& shard,
                          const std::vector<CellResult>& results);
ShardArtifact load_shard_artifact(const std::string& path);

// True when `artifact` is a usable partial of exactly (spec, shard): same
// sweep, same parameters, same shard coordinates, every owned cell present.
bool artifact_matches(const ShardArtifact& artifact, const SweepSpec& spec, const Shard& shard);

// Incremental merge: accepts validated artifacts one at a time, in any
// order, and finalises to exactly what merge_artifacts produces — the
// byte-identical-merge property, available while shards are still landing.
// This is what lets a dispatch campaign render progress as artifacts stream
// in from worker sessions instead of waiting for the last shard.
//
// Every add() validates the newcomer against the first artifact accepted
// (same sweep, same params, same shard count, same cell grid, no cell
// covered twice) and throws CicError naming the violation, leaving the
// already-merged state untouched. The per-shard/per-cell bookkeeping is
// deterministic: two MergeStates fed the same artifact *set* in different
// orders report identical progress and finalise to identical cells.
class MergeState {
 public:
  void add(ShardArtifact artifact);

  std::size_t shards_total() const { return shard_count_; }
  std::size_t shards_merged() const { return shards_merged_; }
  std::size_t cells_total() const { return covered_.size(); }
  std::size_t cells_merged() const { return cells_merged_; }
  bool complete() const { return shard_count_ > 0 && cells_merged_ == covered_.size(); }

  // One deterministic progress line: "3/7 shards, 120/280 cells (42.9%)".
  std::string progress() const;
  // Deterministic partial-progress table: one row per shard with its cell
  // count and merged/pending status — what a long campaign shows while
  // rendering incrementally. Depends only on the set of merged shards.
  std::string progress_table() const;

  // The full cell vector; throws CicError while cells are missing. The
  // result is indistinguishable from run_cells(spec, {1,1}, jobs) of the
  // producing binary.
  std::vector<CellResult> finalize() &&;

  // Sweep identity of the first accepted artifact (valid once
  // shards_merged() > 0) — what the caller renders with.
  const std::string& sweep() const { return sweep_; }
  const SweepParams& params() const { return params_; }

 private:
  std::string sweep_;
  SweepParams params_;
  unsigned shard_count_ = 0;
  std::size_t shards_merged_ = 0;
  std::size_t cells_merged_ = 0;
  std::vector<bool> shard_merged_;  // by shard index - 1
  std::vector<bool> covered_;       // by cell index
  std::vector<CellResult> results_;
};

// Merges partial artifacts into the full cell vector. Validates that all
// artifacts agree on (sweep, params, shard count, total cells) and that
// together they cover every cell exactly once; throws CicError naming the
// first violation. Implemented over MergeState; the batch entry point also
// pre-checks the provided cell count against the claimed grid, so a
// tampered total_cells fails before sizing any allocation by it. Takes the
// artifacts by value so callers can std::move a large set in and the cell
// payloads transfer instead of copying.
std::vector<CellResult> merge_artifacts(std::vector<ShardArtifact> artifacts);

// Resume: returns this shard's cells, loading them from `path` when a valid
// artifact for exactly (spec, shard) already exists there, otherwise running
// the cells and (re)writing the artifact. `force` skips the load. `reused`
// (optional) reports whether the artifact was reused.
std::vector<CellResult> run_or_load_shard(const SweepSpec& spec, const Shard& shard,
                                          unsigned jobs, const std::string& path, bool force,
                                          bool* reused = nullptr);

// Convenience: all cells in this process ("--shard 1/1").
std::vector<CellResult> run_all(const SweepSpec& spec, unsigned jobs);

// Looks up a parameter recorded in an artifact; throws CicError when absent.
std::string_view param(const SweepParams& params, std::string_view name);

}  // namespace cicmon::exp
