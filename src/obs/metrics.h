// Process-wide metrics registry: interned-name counters, timers, and
// histograms with thread-local shards, aggregated deterministically at
// flush.
//
// Instrumentation sites intern a name once (any thread, mutex-protected)
// and then bump through the returned dense id — one thread-local vector
// index per event, no lock, no map walk. Each thread accumulates into its
// own shard; a thread that exits folds its shard into a retired base under
// the registry mutex, so TaskPool churn never grows the live set without
// bound.
//
// Aggregation contract: `snapshot`, `counter_values`, and `counter_delta`
// merge the retired base with every live shard and must be called from a
// quiesce point — after the parallel regions whose threads bumped have
// joined (every `parallel_for` joins before returning, so the main thread
// after a sweep/campaign/worker assignment is such a point). Output is
// sorted by name, so flushing the same events always renders the same
// bytes.
//
// Collection is always on: every instrumented site is a cold path (cache
// misses, per-run publishes, wire records), so the disabled cost is a few
// relaxed adds per simulated *run*, not per instruction. Emission — the
// trace file, the `cicmon-metrics-v1` summary — is what the CLI flags gate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/stats.h"

namespace cicmon::obs {

using CounterId = std::uint32_t;
using TimerId = std::uint32_t;
using HistId = std::uint32_t;

// Interning: returns the stable dense id for `name`, registering it on
// first sight. Ids are process-lifetime; intern once (function-local
// static) and bump forever.
CounterId counter(std::string_view name);
TimerId timer(std::string_view name);
HistId histogram(std::string_view name);

// Hot-path recording: O(1) on the calling thread's shard.
void bump(CounterId id, std::uint64_t amount = 1);
void record(TimerId id, double value);
void observe(HistId id, std::int64_t key, std::uint64_t weight = 1);

// Cold-path string forms (intern + record in one call).
void bump(std::string_view name, std::uint64_t amount = 1);
void record(std::string_view name, double value);

// A deterministic aggregate of everything recorded so far: retired shards
// plus every live one, sorted by name. Zero counters and empty timers /
// histograms are elided, so untouched registrations never show up.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, support::RunningStat>> timers;
  std::vector<std::pair<std::string, support::Histogram>> histograms;
};
MetricsSnapshot snapshot();

// Dense counter totals indexed by CounterId — the cheap capture half of a
// delta. `counter_delta(before)` returns the name-sorted nonzero increments
// since `before` was captured (ids registered after the capture read as
// zero-before). This is how a session worker ships exactly one
// assignment's worth of counters in its done record.
std::vector<std::uint64_t> counter_values();
std::vector<std::pair<std::string, std::uint64_t>> counter_delta(
    const std::vector<std::uint64_t>& before);

// Renders a snapshot as the `cicmon-metrics-v1` JSON document / as an
// aligned ASCII table pair (counters + timers).
std::string render_metrics_json(const MetricsSnapshot& snap, std::string_view command);
std::string render_metrics_table(const MetricsSnapshot& snap);

// Zeroes every recorded value (names and ids survive). Test isolation only.
void reset_for_tests();

}  // namespace cicmon::obs
