#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "support/json.h"
#include "support/table.h"

namespace cicmon::obs {
namespace {

// One thread's private accumulators, indexed densely by id. Vectors grow
// lazily on first bump so registration order never forces allocation on
// threads that stay quiet.
struct Shard {
  std::vector<std::uint64_t> counters;
  std::vector<support::RunningStat> timers;
  std::vector<support::Histogram> histograms;

  void fold_into(Shard& into) const {
    if (into.counters.size() < counters.size()) into.counters.resize(counters.size(), 0);
    for (std::size_t i = 0; i < counters.size(); ++i) into.counters[i] += counters[i];
    if (into.timers.size() < timers.size()) into.timers.resize(timers.size());
    for (std::size_t i = 0; i < timers.size(); ++i) into.timers[i].merge(timers[i]);
    if (into.histograms.size() < histograms.size()) into.histograms.resize(histograms.size());
    for (std::size_t i = 0; i < histograms.size(); ++i) into.histograms[i].merge(histograms[i]);
  }

  void zero() {
    std::fill(counters.begin(), counters.end(), 0);
    std::fill(timers.begin(), timers.end(), support::RunningStat{});
    std::fill(histograms.begin(), histograms.end(), support::Histogram{});
  }
};

class Registry {
 public:
  // Leaked singleton: thread-local shard holders retire into the registry
  // on thread exit, including the main thread's during shutdown, so the
  // registry must never be destroyed first.
  static Registry& get() {
    static Registry* g = new Registry;
    return *g;
  }

  std::uint32_t intern(int kind, std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& names = names_[kind];
    auto& ids = ids_[kind];
    auto it = ids.find(name);
    if (it != ids.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(names.size());
    names.emplace_back(name);
    ids.emplace(names.back(), id);
    return id;
  }

  void register_shard(Shard* shard) {
    std::lock_guard<std::mutex> lock(mu_);
    live_.push_back(shard);
  }

  void retire_shard(Shard* shard) {
    std::lock_guard<std::mutex> lock(mu_);
    shard->fold_into(retired_);
    live_.erase(std::remove(live_.begin(), live_.end(), shard), live_.end());
  }

  // Callers hold the quiesce contract from the header: live shards other
  // than the caller's are not being bumped concurrently.
  Shard merged() const {
    std::lock_guard<std::mutex> lock(mu_);
    Shard out = retired_;
    for (const Shard* shard : live_) shard->fold_into(out);
    return out;
  }

  std::vector<std::string> names(int kind) const {
    std::lock_guard<std::mutex> lock(mu_);
    return names_[kind];
  }

  void reset_values() {
    std::lock_guard<std::mutex> lock(mu_);
    retired_.zero();
    for (Shard* shard : live_) shard->zero();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> names_[3];
  std::map<std::string, std::uint32_t, std::less<>> ids_[3];
  Shard retired_;
  std::vector<Shard*> live_;
};

constexpr int kCounter = 0;
constexpr int kTimer = 1;
constexpr int kHist = 2;

struct ShardHolder {
  Shard shard;
  ShardHolder() { Registry::get().register_shard(&shard); }
  ~ShardHolder() { Registry::get().retire_shard(&shard); }
};

Shard& local_shard() {
  thread_local ShardHolder holder;
  return holder.shard;
}

}  // namespace

CounterId counter(std::string_view name) { return Registry::get().intern(kCounter, name); }
TimerId timer(std::string_view name) { return Registry::get().intern(kTimer, name); }
HistId histogram(std::string_view name) { return Registry::get().intern(kHist, name); }

void bump(CounterId id, std::uint64_t amount) {
  Shard& shard = local_shard();
  if (shard.counters.size() <= id) shard.counters.resize(id + 1, 0);
  shard.counters[id] += amount;
}

void record(TimerId id, double value) {
  Shard& shard = local_shard();
  if (shard.timers.size() <= id) shard.timers.resize(id + 1);
  shard.timers[id].add(value);
}

void observe(HistId id, std::int64_t key, std::uint64_t weight) {
  Shard& shard = local_shard();
  if (shard.histograms.size() <= id) shard.histograms.resize(id + 1);
  shard.histograms[id].add(key, weight);
}

void bump(std::string_view name, std::uint64_t amount) { bump(counter(name), amount); }
void record(std::string_view name, double value) { record(timer(name), value); }

MetricsSnapshot snapshot() {
  Registry& reg = Registry::get();
  const Shard merged = reg.merged();
  MetricsSnapshot snap;
  const auto counter_names = reg.names(kCounter);
  for (std::size_t i = 0; i < merged.counters.size(); ++i) {
    if (merged.counters[i] != 0) snap.counters.emplace_back(counter_names[i], merged.counters[i]);
  }
  const auto timer_names = reg.names(kTimer);
  for (std::size_t i = 0; i < merged.timers.size(); ++i) {
    if (merged.timers[i].count() != 0) snap.timers.emplace_back(timer_names[i], merged.timers[i]);
  }
  const auto hist_names = reg.names(kHist);
  for (std::size_t i = 0; i < merged.histograms.size(); ++i) {
    if (merged.histograms[i].total() != 0) {
      snap.histograms.emplace_back(hist_names[i], merged.histograms[i]);
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.timers.begin(), snap.timers.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

std::vector<std::uint64_t> counter_values() { return Registry::get().merged().counters; }

std::vector<std::pair<std::string, std::uint64_t>> counter_delta(
    const std::vector<std::uint64_t>& before) {
  const std::vector<std::uint64_t> now = counter_values();
  const auto names = Registry::get().names(kCounter);
  std::vector<std::pair<std::string, std::uint64_t>> delta;
  for (std::size_t i = 0; i < now.size(); ++i) {
    const std::uint64_t prev = i < before.size() ? before[i] : 0;
    if (now[i] > prev) delta.emplace_back(names[i], now[i] - prev);
  }
  std::sort(delta.begin(), delta.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return delta;
}

std::string render_metrics_json(const MetricsSnapshot& snap, std::string_view command) {
  support::JsonWriter writer;
  writer.begin_object();
  writer.key("schema");
  writer.value("cicmon-metrics-v1");
  writer.key("command");
  writer.value(command);
  writer.key("counters");
  writer.begin_object();
  for (const auto& [name, value] : snap.counters) {
    writer.key(name);
    writer.value_u64(value);
  }
  writer.end_object();
  writer.key("timers");
  writer.begin_object();
  for (const auto& [name, stat] : snap.timers) {
    writer.key(name);
    writer.begin_object();
    writer.key("count");
    writer.value_u64(stat.count());
    writer.key("total");
    writer.value_fixed(stat.sum(), 3);
    writer.key("mean");
    writer.value_fixed(stat.mean(), 3);
    writer.key("min");
    writer.value_fixed(stat.min(), 3);
    writer.key("max");
    writer.value_fixed(stat.max(), 3);
    writer.end_object();
  }
  writer.end_object();
  writer.key("histograms");
  writer.begin_object();
  for (const auto& [name, hist] : snap.histograms) {
    writer.key(name);
    writer.begin_object();
    for (const auto& [key, weight] : hist.bins()) {
      writer.key(std::to_string(key));
      writer.value_u64(weight);
    }
    writer.end_object();
  }
  writer.end_object();
  writer.end_object();
  return writer.take();
}

std::string render_metrics_table(const MetricsSnapshot& snap) {
  std::string out;
  if (!snap.counters.empty()) {
    support::Table counters({"counter", "value"});
    for (const auto& [name, value] : snap.counters) {
      counters.add_row({name, support::Table::fmt_u64(value)});
    }
    out += counters.render();
  }
  if (!snap.timers.empty()) {
    if (!out.empty()) out += "\n";
    support::Table timers({"timer", "count", "total", "mean", "min", "max"});
    for (const auto& [name, stat] : snap.timers) {
      timers.add_row({name, support::Table::fmt_u64(stat.count()), support::Table::fmt(stat.sum(), 3),
                      support::Table::fmt(stat.mean(), 3), support::Table::fmt(stat.min(), 3),
                      support::Table::fmt(stat.max(), 3)});
    }
    out += timers.render();
  }
  return out;
}

void reset_for_tests() { Registry::get().reset_values(); }

}  // namespace cicmon::obs
