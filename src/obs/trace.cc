#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "obs/metrics.h"

namespace cicmon::obs {
namespace {

struct TraceSink {
  std::mutex mu;
  std::FILE* file = nullptr;
  std::chrono::steady_clock::time_point t0;
  std::atomic<bool> enabled{false};
};

// Leaked for the same reason as the metrics registry: spans may close from
// thread-local destructors during shutdown.
TraceSink& sink() {
  static TraceSink* g = new TraceSink;
  return *g;
}

// Compact JSON string escape (JsonWriter pretty-prints; trace lines must
// stay single-line).
void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_args(std::string& out, const TraceArgs& args) {
  if (args.empty()) return;
  out += ",\"args\":{";
  bool first = true;
  for (const auto& [key, token] : args.rendered()) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, key);
    out += ':';
    out += token;
  }
  out += '}';
}

void write_line(const std::string& line) {
  TraceSink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.file == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), s.file);
  std::fputc('\n', s.file);
}

}  // namespace

TraceArgs& TraceArgs::add(std::string_view key, std::string_view value) {
  std::string token;
  append_escaped(token, value);
  rendered_.emplace_back(std::string(key), std::move(token));
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view key, std::uint64_t value) {
  rendered_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", value);
  rendered_.emplace_back(std::string(key), buf);
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view key, bool value) {
  rendered_.emplace_back(std::string(key), value ? "true" : "false");
  return *this;
}

bool open_trace(const std::string& path, std::string_view command) {
  TraceSink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.file != nullptr) return true;
  s.file = std::fopen(path.c_str(), "wb");
  if (s.file == nullptr) return false;
  s.t0 = std::chrono::steady_clock::now();
  s.enabled.store(true, std::memory_order_release);
  std::string line = "{\"schema\":\"cicmon-trace-v1\",\"command\":";
  append_escaped(line, command);
  line += '}';
  std::fwrite(line.data(), 1, line.size(), s.file);
  std::fputc('\n', s.file);
  return true;
}

void close_trace() {
  if (!trace_enabled()) return;
  // Snapshot outside the sink lock: the registry has its own mutex.
  const MetricsSnapshot snap = snapshot();
  std::string line = "{\"ev\":\"metrics\",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) line += ',';
    first = false;
    append_escaped(line, name);
    line += ':';
    line += std::to_string(value);
  }
  line += "},\"timers\":{";
  first = true;
  for (const auto& [name, stat] : snap.timers) {
    if (!first) line += ',';
    first = false;
    append_escaped(line, name);
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  ":{\"count\":%llu,\"total\":%.3f,\"mean\":%.3f,\"min\":%.3f,\"max\":%.3f}",
                  static_cast<unsigned long long>(stat.count()), stat.sum(), stat.mean(),
                  stat.min(), stat.max());
    line += buf;
  }
  line += "}}";
  TraceSink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  s.enabled.store(false, std::memory_order_release);
  if (s.file == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), s.file);
  std::fputc('\n', s.file);
  std::fclose(s.file);
  s.file = nullptr;
}

bool trace_enabled() { return sink().enabled.load(std::memory_order_acquire); }

std::uint64_t trace_now_us() {
  if (!trace_enabled()) return 0;
  const auto dt = std::chrono::steady_clock::now() - sink().t0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(dt).count());
}

void trace_instant(std::string_view name, const TraceArgs& args) {
  if (!trace_enabled()) return;
  std::string line = "{\"ev\":\"instant\",\"name\":";
  append_escaped(line, name);
  line += ",\"t_us\":";
  line += std::to_string(trace_now_us());
  append_args(line, args);
  line += '}';
  write_line(line);
}

void trace_span(std::string_view name, std::uint64_t start_us, const TraceArgs& args) {
  if (!trace_enabled()) return;
  const std::uint64_t now = trace_now_us();
  std::string line = "{\"ev\":\"span\",\"name\":";
  append_escaped(line, name);
  line += ",\"t_us\":";
  line += std::to_string(start_us);
  line += ",\"dur_us\":";
  line += std::to_string(now > start_us ? now - start_us : 0);
  append_args(line, args);
  line += '}';
  write_line(line);
}

Span::Span(std::string_view name) : name_(name) {
  if (trace_enabled()) start_us_ = trace_now_us();
}

Span::~Span() { close(); }

void Span::close() {
  if (closed_) return;
  closed_ = true;
  if (trace_enabled()) trace_span(name_, start_us_, args_);
}

}  // namespace cicmon::obs
