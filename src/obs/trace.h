// Scoped trace spans and instant events, emitted as a `cicmon-trace-v1`
// JSONL log (one compact JSON object per line):
//
//   {"schema":"cicmon-trace-v1","command":"dispatch"}        header, line 1
//   {"ev":"span","name":"sweep.run","t_us":12,"dur_us":3456,"args":{...}}
//   {"ev":"instant","name":"session.ready","t_us":78,"args":{...}}
//   {"ev":"metrics","counters":{...},"timers":{...}}         final line
//
// Timestamps are microseconds on the steady clock since `open_trace` — a
// host measurement, never part of the determinism surface. Tracing is off
// unless `open_trace` succeeded (the CLI's `--trace FILE`); every emit
// helper is a cheap no-op when disabled, so instrumentation sites don't
// guard. Writes are mutex-serialized whole lines, so spans closing on
// worker threads never interleave bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cicmon::obs {

// Key/value payload for one event. Values are rendered to JSON tokens at
// add() time (strings quoted+escaped, numbers bare) so emitting a span is
// one buffer concatenation.
class TraceArgs {
 public:
  TraceArgs& add(std::string_view key, std::string_view value);
  TraceArgs& add(std::string_view key, const char* value) {
    return add(key, std::string_view(value));
  }
  TraceArgs& add(std::string_view key, std::uint64_t value);
  TraceArgs& add(std::string_view key, double value);  // fixed 3 decimals
  TraceArgs& add(std::string_view key, bool value);

  bool empty() const { return rendered_.empty(); }
  const std::vector<std::pair<std::string, std::string>>& rendered() const { return rendered_; }

 private:
  std::vector<std::pair<std::string, std::string>> rendered_;
};

// Opens `path` and writes the header line; returns false (tracing stays
// off) when the file cannot be created. `command` names the subcommand.
bool open_trace(const std::string& path, std::string_view command);

// Appends the final `metrics` event (the registry snapshot at close) and
// closes the file. Safe to call when tracing never opened.
void close_trace();

bool trace_enabled();

// Microseconds since open_trace; 0 when tracing is off.
std::uint64_t trace_now_us();

void trace_instant(std::string_view name, const TraceArgs& args = {});

// Emits a span that started at `start_us` (from trace_now_us) and ends now.
void trace_span(std::string_view name, std::uint64_t start_us, const TraceArgs& args = {});

// RAII span: times construction → destruction (or an explicit close(), for
// spans that should end before the enclosing scope does). Args may be
// attached any time before the span ends.
class Span {
 public:
  explicit Span(std::string_view name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  TraceArgs& args() { return args_; }
  void close();  // emits now; the destructor becomes a no-op

 private:
  std::string name_;
  std::uint64_t start_us_ = 0;
  bool closed_ = false;
  TraceArgs args_;
};

}  // namespace cicmon::obs
