// `cicmon report` — renders a `cicmon-trace-v1` JSONL log as per-phase and
// per-worker breakdown tables plus a slowest-shard list and the final
// counter flush. Pure text-in/text-out so tests drive it on synthetic
// traces without touching the filesystem.
#pragma once

#include <string>
#include <string_view>

namespace cicmon::obs {

// Throws support::CicError on a malformed or non-trace document.
std::string render_report(std::string_view trace_jsonl);

}  // namespace cicmon::obs
