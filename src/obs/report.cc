#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "support/error.h"
#include "support/json.h"
#include "support/stats.h"
#include "support/table.h"

namespace cicmon::obs {
namespace {

// The per-assignment span the orchestrator emits; args carry the shard
// label, worker slot, and the queue-wait/run-wall split.
constexpr std::string_view kShardSpan = "dispatch.shard";

struct ShardRow {
  std::string shard;
  std::uint64_t worker = 0;
  bool has_worker = false;
  double dur_ms = 0.0;
  double queue_wait_ms = 0.0;
  bool reused = false;
};

double arg_f64(const support::JsonValue& args, std::string_view key) {
  const support::JsonValue* v = args.find(key);
  return v == nullptr ? 0.0 : v->as_f64();
}

}  // namespace

std::string render_report(std::string_view trace_jsonl) {
  std::string command = "?";
  std::map<std::string, support::RunningStat> phases;
  std::vector<ShardRow> shards;
  std::map<std::uint64_t, support::RunningStat> worker_busy;  // per worker slot, ms
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::uint64_t events = 0;
  std::uint64_t end_us = 0;
  bool saw_header = false;
  bool saw_metrics = false;

  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < trace_jsonl.size()) {
    std::size_t eol = trace_jsonl.find('\n', pos);
    if (eol == std::string_view::npos) eol = trace_jsonl.size();
    const std::string_view line = trace_jsonl.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    const support::JsonValue record = support::parse_json(line);
    if (!saw_header) {
      const support::JsonValue* schema = record.find("schema");
      support::check(schema != nullptr && schema->as_string() == "cicmon-trace-v1",
                     "not a cicmon-trace-v1 log (bad or missing header line)");
      command = record.at("command").as_string();
      saw_header = true;
      continue;
    }
    const std::string& ev = record.at("ev").as_string();
    ++events;
    if (ev == "metrics") {
      for (const auto& [name, value] : record.at("counters").as_object()) {
        counters.emplace_back(name, value.as_u64());
      }
      saw_metrics = true;
      continue;
    }
    const std::uint64_t t_us = record.at("t_us").as_u64();
    std::uint64_t dur_us = 0;
    if (ev == "span") dur_us = record.at("dur_us").as_u64();
    end_us = std::max(end_us, t_us + dur_us);
    if (ev != "span") continue;
    const std::string& name = record.at("name").as_string();
    const double dur_ms = static_cast<double>(dur_us) / 1000.0;
    phases[name].add(dur_ms);
    if (name == kShardSpan) {
      ShardRow row;
      row.dur_ms = dur_ms;
      if (const support::JsonValue* args = record.find("args")) {
        if (const support::JsonValue* shard = args->find("shard")) row.shard = shard->as_string();
        if (const support::JsonValue* worker = args->find("worker")) {
          row.worker = worker->as_u64();
          row.has_worker = true;
        }
        if (const support::JsonValue* reused = args->find("reused")) row.reused = reused->as_bool();
        row.queue_wait_ms = arg_f64(*args, "queue_wait_ms");
      }
      if (row.has_worker) worker_busy[row.worker].add(dur_ms);
      shards.push_back(std::move(row));
    }
  }
  support::check(saw_header, "empty trace");

  std::string out;
  {
    char buf[160];
    std::snprintf(buf, sizeof buf, "trace: %s — %llu event(s), %.3f s\n\n", command.c_str(),
                  static_cast<unsigned long long>(events),
                  static_cast<double>(end_us) / 1e6);
    out += buf;
  }

  if (!phases.empty()) {
    support::Table table({"phase", "count", "total ms", "mean ms", "min ms", "max ms"});
    // Heaviest phase first; name breaks ties so equal-weight phases render
    // in a stable order.
    std::vector<std::pair<std::string, support::RunningStat>> rows(phases.begin(), phases.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second.sum() != b.second.sum()) return a.second.sum() > b.second.sum();
      return a.first < b.first;
    });
    for (const auto& [name, stat] : rows) {
      table.add_row({name, support::Table::fmt_u64(stat.count()), support::Table::fmt(stat.sum(), 2),
                     support::Table::fmt(stat.mean(), 2), support::Table::fmt(stat.min(), 2),
                     support::Table::fmt(stat.max(), 2)});
    }
    out += table.render();
  }

  if (!worker_busy.empty()) {
    const double trace_ms = static_cast<double>(end_us) / 1000.0;
    support::Table table({"worker", "shards", "busy ms", "queue-wait ms", "util %"});
    for (const auto& [worker, busy] : worker_busy) {
      double wait_ms = 0.0;
      for (const ShardRow& row : shards) {
        if (row.has_worker && row.worker == worker) wait_ms += row.queue_wait_ms;
      }
      table.add_row({support::Table::fmt_u64(worker), support::Table::fmt_u64(busy.count()),
                     support::Table::fmt(busy.sum(), 2), support::Table::fmt(wait_ms, 2),
                     support::Table::fmt_pct(trace_ms > 0.0 ? busy.sum() / trace_ms : 0.0)});
    }
    out += "\n";
    out += table.render();
  }

  if (!shards.empty()) {
    std::vector<const ShardRow*> slow;
    slow.reserve(shards.size());
    for (const ShardRow& row : shards) slow.push_back(&row);
    std::sort(slow.begin(), slow.end(), [](const ShardRow* a, const ShardRow* b) {
      if (a->dur_ms != b->dur_ms) return a->dur_ms > b->dur_ms;
      return a->shard < b->shard;
    });
    if (slow.size() > 10) slow.resize(10);
    support::Table table({"slowest shard", "worker", "run ms", "queue-wait ms", "reused"});
    for (const ShardRow* row : slow) {
      table.add_row({row->shard, row->has_worker ? support::Table::fmt_u64(row->worker) : "-",
                     support::Table::fmt(row->dur_ms, 2), support::Table::fmt(row->queue_wait_ms, 2),
                     row->reused ? "yes" : "no"});
    }
    out += "\n";
    out += table.render();
  }

  if (saw_metrics && !counters.empty()) {
    support::Table table({"counter", "value"});
    for (const auto& [name, value] : counters) {
      table.add_row({name, support::Table::fmt_u64(value)});
    }
    out += "\n";
    out += table.render();
  }

  return out;
}

}  // namespace cicmon::obs
