#!/usr/bin/env python3
"""Validate a cicmon-trace-v1 JSONL log.

Checks the structural contract docs/telemetry.md promises:

  - line 1 is the header: {"schema": "cicmon-trace-v1", "command": <str>}
  - every later line is an event object with "ev" in {"span", "instant",
    "metrics"}; spans and instants carry a string "name" and integer
    "t_us", spans additionally an integer "dur_us"
  - exactly one "metrics" event, and it is the final line, with object
    "counters" and "timers" members

Optional assertions for CI:

  --expect-span NAME=N     exactly N spans named NAME
  --expect-command CMD     header names subcommand CMD
  --expect-counter NAME=N  the metrics footer records counter NAME == N

Exits 0 when the trace is valid, 1 with a message on stderr otherwise.
"""

import argparse
import json
import sys


def fail(line_no, message):
    print(f"check_trace: line {line_no}: {message}", file=sys.stderr)
    sys.exit(1)


def parse_expect(values, what):
    out = {}
    for item in values:
        name, sep, count = item.partition("=")
        if not sep or not count.isdigit():
            print(f"check_trace: bad {what} '{item}' (want NAME=N)", file=sys.stderr)
            sys.exit(2)
        out[name] = int(count)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="cicmon-trace-v1 JSONL file")
    parser.add_argument("--expect-span", action="append", default=[], metavar="NAME=N")
    parser.add_argument("--expect-counter", action="append", default=[], metavar="NAME=N")
    parser.add_argument("--expect-command", metavar="CMD")
    args = parser.parse_args()

    expect_spans = parse_expect(args.expect_span, "--expect-span")
    expect_counters = parse_expect(args.expect_counter, "--expect-counter")

    with open(args.trace, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().split("\n") if line]
    if not lines:
        fail(1, "empty trace")

    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as err:
        fail(1, f"header is not JSON: {err}")
    if header.get("schema") != "cicmon-trace-v1":
        fail(1, f"bad schema {header.get('schema')!r}")
    command = header.get("command")
    if not isinstance(command, str) or not command:
        fail(1, "header missing command")
    if args.expect_command and command != args.expect_command:
        fail(1, f"command is {command!r}, expected {args.expect_command!r}")

    span_counts = {}
    events = 0
    metrics = None
    last_ev = None
    for line_no, line in enumerate(lines[1:], start=2):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as err:
            fail(line_no, f"not JSON: {err}")
        if not isinstance(event, dict):
            fail(line_no, "event is not an object")
        ev = event.get("ev")
        if ev not in ("span", "instant", "metrics"):
            fail(line_no, f"unknown ev {ev!r}")
        events += 1
        last_ev = ev
        if ev == "metrics":
            if metrics is not None:
                fail(line_no, "second metrics event")
            for key in ("counters", "timers"):
                if not isinstance(event.get(key), dict):
                    fail(line_no, f"metrics event missing object {key!r}")
            metrics = event
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            fail(line_no, f"{ev} missing name")
        t_us = event.get("t_us")
        if not isinstance(t_us, int) or t_us < 0:
            fail(line_no, f"{ev} '{name}' has bad t_us {t_us!r}")
        if ev == "span":
            dur_us = event.get("dur_us")
            if not isinstance(dur_us, int) or dur_us < 0:
                fail(line_no, f"span '{name}' has bad dur_us {dur_us!r}")
            span_counts[name] = span_counts.get(name, 0) + 1

    if metrics is None:
        fail(len(lines), "no metrics footer")
    if last_ev != "metrics":
        fail(len(lines), "metrics footer is not the final line")

    for name, want in expect_spans.items():
        got = span_counts.get(name, 0)
        if got != want:
            fail(len(lines), f"expected {want} '{name}' span(s), found {got}")
    for name, want in expect_counters.items():
        got = metrics["counters"].get(name)
        if got != want:
            fail(len(lines), f"expected counter {name}={want}, found {got!r}")

    print(f"check_trace: OK — {events} event(s), {sum(span_counts.values())} span(s), "
          f"{len(metrics['counters'])} counter(s)")


if __name__ == "__main__":
    main()
