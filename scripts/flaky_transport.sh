#!/usr/bin/env bash
# Fault-injecting dispatch harness for CI and local testing, two modes:
#
# Exec mode (wraps one worker launch, as a `--transport` template): the
# first worker launched for the target shard is killed by SIGKILL before it
# can produce an artifact — the orchestrator must re-enqueue and retry it —
# and every other launch runs the worker unchanged.
#
#   --transport 'scripts/flaky_transport.sh MARKERS 4/7 {shard} {cmd}'
#
# kills the first worker for shard 4/7 and leaves a MARKERS/4of7 marker.
# (A template transport always dispatches exec-per-shard, so this mode
# exercises the fallback path.)
#
# Session mode (wraps the whole `cicmon dispatch` invocation): arms the
# worker-side deterministic death hook (CICMON_WORKER_FLAKY*), so the first
# persistent session to be assigned the target shard writes half a done
# record and SIGKILLs itself mid-record — the orchestrator must detect the
# truncation, tear the session down, respawn, and retry the shard:
#
#   scripts/flaky_transport.sh --session MARKERS 4/7 -- \
#       ./build/cicmon dispatch campaign ... --workers 3 --shards 7
#
# leaves MARKERS/4of7 once the sabotage fired.
#
# Golden mode (wraps the whole `cicmon dispatch` invocation): arms the
# mid-golden-chunk death hook (CICMON_WORKER_FLAKY_GOLDEN), so the first
# persistent session to receive a golden-state chunk SIGKILLs itself
# mid-stream — the orchestrator must tear that session down as a handshake
# failure and finish the run on its replacement:
#
#   scripts/flaky_transport.sh --golden MARKERS -- \
#       ./build/cicmon dispatch campaign ... --workers 3 --shards 7
#
# leaves MARKERS/golden once the sabotage fired. In every mode the marker
# directory records which sabotages happened, so a test can assert the kill
# actually took place.
set -u

if [[ ${1:-} == --golden ]]; then
  shift
  if [[ $# -lt 2 ]]; then
    echo "usage: flaky_transport.sh --golden MARKER_DIR -- DISPATCH_CMD..." >&2
    exit 2
  fi
  marker_dir=$1
  shift
  [[ ${1:-} == -- ]] && shift
  mkdir -p "${marker_dir}"
  CICMON_WORKER_FLAKY_GOLDEN=1 CICMON_WORKER_FLAKY_MARKER="${marker_dir}" exec "$@"
fi

if [[ ${1:-} == --session ]]; then
  shift
  if [[ $# -lt 3 ]]; then
    echo "usage: flaky_transport.sh --session MARKER_DIR TARGET_SHARD -- DISPATCH_CMD..." >&2
    exit 2
  fi
  marker_dir=$1
  target=$2
  shift 2
  [[ ${1:-} == -- ]] && shift
  mkdir -p "${marker_dir}"
  CICMON_WORKER_FLAKY="${target}" CICMON_WORKER_FLAKY_MARKER="${marker_dir}" exec "$@"
fi

if [[ $# -lt 4 ]]; then
  echo "usage: flaky_transport.sh MARKER_DIR TARGET_SHARD SHARD CMD..." >&2
  echo "       flaky_transport.sh --session MARKER_DIR TARGET_SHARD -- DISPATCH_CMD..." >&2
  exit 2
fi
marker_dir=$1
target=$2
shard=$3
shift 3

mkdir -p "${marker_dir}"
marker="${marker_dir}/${shard/\//of}"
if [[ ${shard} == "${target}" && ! -e ${marker} ]]; then
  : > "${marker}"
  # Die the way a crashed or preempted worker does: by signal, no artifact.
  kill -9 $$
fi
exec "$@"
