#!/usr/bin/env bash
# Fault-injecting dispatch transport for CI and local testing: the first
# worker launched for the target shard is killed by SIGKILL before it can
# produce an artifact — the orchestrator must re-enqueue and retry it — and
# every other launch runs the worker unchanged. The marker directory records
# which sabotages fired, so a test can assert the kill actually happened.
#
# Usage, as a `cicmon dispatch --transport` template:
#
#   --transport 'scripts/flaky_transport.sh MARKERS 4/7 {shard} {cmd}'
#
# kills the first worker for shard 4/7 and leaves a MARKERS/4of7 marker.
set -u

if [[ $# -lt 4 ]]; then
  echo "usage: flaky_transport.sh MARKER_DIR TARGET_SHARD SHARD CMD..." >&2
  exit 2
fi
marker_dir=$1
target=$2
shard=$3
shift 3

mkdir -p "${marker_dir}"
marker="${marker_dir}/${shard/\//of}"
if [[ ${shard} == "${target}" && ! -e ${marker} ]]; then
  : > "${marker}"
  # Die the way a crashed or preempted worker does: by signal, no artifact.
  kill -9 $$
fi
exec "$@"
