#!/usr/bin/env bash
# Smoke-runs every experiment binary at tiny scale so experiment-layer
# regressions (crashes, thrown CicErrors, malformed sweeps) surface in CI
# without paying full-sweep cost. Usage: scripts/smoke_bench.sh [build-dir]
set -euo pipefail

build_dir=${1:-build}
if [[ ! -d ${build_dir} ]]; then
  echo "smoke_bench: build directory '${build_dir}' not found" >&2
  exit 1
fi

# Preflight: the unified CLI is the backbone of every gate below, and the
# script leans on a handful of POSIX tools. A missing piece must fail the
# run loudly up front — a silent skip would let CI report green without
# having tested anything.
if [[ ! -x ${build_dir}/cicmon ]]; then
  echo "smoke_bench: required binary '${build_dir}/cicmon' is missing or not executable" >&2
  echo "smoke_bench: build it first: cmake --build ${build_dir} -j --target cicmon_cli" >&2
  exit 1
fi
for tool in diff cmp grep mktemp date; do
  if ! command -v "${tool}" > /dev/null 2>&1; then
    echo "smoke_bench: required tool '${tool}' not found on PATH" >&2
    exit 1
  fi
done

scale=0.05
failures=0

run() {
  local name=$1
  shift
  if [[ ! -x ${build_dir}/${name} ]]; then
    echo "--- ${name}: SKIPPED (not built)"
    return
  fi
  echo "--- ${name} $*"
  if ! "${build_dir}/${name}" "$@" > /dev/null; then
    echo "--- ${name}: FAILED" >&2
    failures=$((failures + 1))
  fi
}

# Table/figure benches take the scale as their single positional argument.
run table1_cycle_overhead "${scale}"
run fig6_miss_rate "${scale}"
run workload_blocks "${scale}"
run fault_detection "${scale}"
run ablation_hash "${scale}"
run ablation_os_cost "${scale}"
run ablation_replacement "${scale}"
run table2_area_timing

# The unified CLI, one subcommand each (campaign sized to stay cheap).
run cicmon table1 --scale "${scale}"
run cicmon fig6 --scale "${scale}"
run cicmon blocks --scale "${scale}"
run cicmon bench --scale "${scale}" --json "${build_dir}/bench_smoke.json"
run cicmon campaign --workload bitcount --scale 0.02 --trials 50 \
  --json "${build_dir}/campaign_smoke.json"
run cicmon workloads

# Engine A/B at smoke scale: the threaded engine (fused handlers behind the
# tamper-safe translation cache) must reproduce the switch interpreter's
# stdout byte for byte. The full engine x cache x dispatch grid runs in the
# engine-determinism CI job; this catches a broken engine flag or an
# obviously diverging handler in every smoke pass.
echo "--- cicmon engine A/B (switch vs threaded)"
engine_dir=$(mktemp -d)
for sub in "table1 --scale ${scale}" \
           "campaign --workload bitcount --scale 0.02 --trials 50"; do
  if ! ${build_dir}/cicmon ${sub} --engine switch 2> /dev/null \
         > "${engine_dir}/switch.txt" ||
     ! ${build_dir}/cicmon ${sub} --engine threaded 2> /dev/null \
         > "${engine_dir}/threaded.txt" ||
     ! diff "${engine_dir}/switch.txt" "${engine_dir}/threaded.txt"; then
    echo "--- cicmon ${sub%% *}: engines diverge or failed" >&2
    failures=$((failures + 1))
  fi
done
rm -rf "${engine_dir}"

# Chaining A/B: superblock chaining is a pure execution strategy, so
# --chain on vs off must byte-diff clean on stdout; the wall-clock split is
# recorded from two cicmon-bench-v1 docs (best-of-3 to shave scheduler
# noise at smoke scale). The full chain axis runs in the engine-determinism
# CI job; this catches a broken --chain flag or a diverging link path.
echo "--- cicmon chaining A/B (chain on vs off)"
chain_dir=$(mktemp -d)
for sub in "table1 --scale ${scale}" \
           "campaign --workload bitcount --scale 0.02 --trials 50"; do
  if ! ${build_dir}/cicmon ${sub} --engine threaded --chain on 2> /dev/null \
         > "${chain_dir}/on.txt" ||
     ! ${build_dir}/cicmon ${sub} --engine threaded --chain off 2> /dev/null \
         > "${chain_dir}/off.txt" ||
     ! diff "${chain_dir}/on.txt" "${chain_dir}/off.txt"; then
    echo "--- cicmon ${sub%% *}: chain on/off diverge or failed" >&2
    failures=$((failures + 1))
  fi
done
if ! ${build_dir}/cicmon bench --scale "${scale}" --engine threaded --best-of 3 \
       --chain on --json "${chain_dir}/bench_chain_on.json" > /dev/null ||
   ! ${build_dir}/cicmon bench --scale "${scale}" --engine threaded --best-of 3 \
       --chain off --json "${chain_dir}/bench_chain_off.json" > /dev/null ||
   ! grep -q '"chain": "on"' "${chain_dir}/bench_chain_on.json" ||
   ! grep -q '"chain": "off"' "${chain_dir}/bench_chain_off.json"; then
  echo "--- cicmon bench --chain: missing or mistagged bench docs" >&2
  failures=$((failures + 1))
else
  on_mips=$(grep -o '"aggregate_mips": [0-9.]*' "${chain_dir}/bench_chain_on.json" | tail -1)
  off_mips=$(grep -o '"aggregate_mips": [0-9.]*' "${chain_dir}/bench_chain_off.json" | tail -1)
  echo "    chain on ${on_mips#*: } MIPS, chain off ${off_mips#*: } MIPS (best of 3)"
fi
rm -rf "${chain_dir}"

# The machine-readable bench output must exist and carry its schema tag.
if [[ -x ${build_dir}/cicmon ]]; then
  if [[ ! -s ${build_dir}/bench_smoke.json ]] ||
     ! grep -q '"schema": "cicmon-bench-v1"' "${build_dir}/bench_smoke.json"; then
    echo "--- cicmon bench --json: malformed or missing output" >&2
    failures=$((failures + 1))
  fi
  # The campaign JSON carries the trials/sec trajectory metric.
  if [[ ! -s ${build_dir}/campaign_smoke.json ]] ||
     ! grep -q '"schema": "cicmon-bench-v1"' "${build_dir}/campaign_smoke.json" ||
     ! grep -q '"trials_per_sec"' "${build_dir}/campaign_smoke.json"; then
    echo "--- cicmon campaign --json: missing trials_per_sec metric" >&2
    failures=$((failures + 1))
  fi
fi

# Checkpoint A/B: restoring golden-run snapshots (at any stride) must
# reproduce the full re-execution campaign summary byte for byte. The full
# site x engine x stride grid runs in the campaign-checkpoints CI job; this
# catches a broken restore path in every smoke pass.
if [[ -x ${build_dir}/cicmon ]]; then
  echo "--- cicmon campaign checkpoints A/B (on vs off vs strided)"
  ckpt_dir=$(mktemp -d)
  base="campaign --workload bitcount --scale 0.02 --trials 50"
  if ! ${build_dir}/cicmon ${base} --checkpoints on 2> /dev/null \
         > "${ckpt_dir}/on.txt" ||
     ! ${build_dir}/cicmon ${base} --checkpoints off 2> /dev/null \
         > "${ckpt_dir}/off.txt" ||
     ! ${build_dir}/cicmon ${base} --checkpoints on --checkpoint-stride 97 \
         2> /dev/null > "${ckpt_dir}/strided.txt" ||
     ! diff "${ckpt_dir}/on.txt" "${ckpt_dir}/off.txt" ||
     ! diff "${ckpt_dir}/on.txt" "${ckpt_dir}/strided.txt"; then
    echo "--- cicmon campaign checkpoints: summaries diverge or failed" >&2
    failures=$((failures + 1))
  fi
  rm -rf "${ckpt_dir}"
fi

# Sharded runs + merge must reproduce the unsharded stdout byte for byte,
# and resuming a completed shard must reuse its artifact untouched.
if [[ -x ${build_dir}/cicmon ]]; then
  echo "--- cicmon shard/merge/resume"
  shard_dir=$(mktemp -d)
  if "${build_dir}/cicmon" table1 --scale "${scale}" > "${shard_dir}/direct.txt" &&
     "${build_dir}/cicmon" table1 --scale "${scale}" --shard 1/2 \
       --out "${shard_dir}/t1.json" 2> /dev/null &&
     "${build_dir}/cicmon" table1 --scale "${scale}" --shard 2/2 --jobs 2 \
       --out "${shard_dir}/t2.json" 2> /dev/null &&
     grep -q '"schema": "cicmon-shard-v1"' "${shard_dir}/t1.json" &&
     "${build_dir}/cicmon" merge "${shard_dir}/t1.json" "${shard_dir}/t2.json" \
       > "${shard_dir}/merged.txt" &&
     diff "${shard_dir}/direct.txt" "${shard_dir}/merged.txt"; then
    cp "${shard_dir}/t1.json" "${shard_dir}/t1.orig.json"
    if ! "${build_dir}/cicmon" table1 --scale "${scale}" --shard 1/2 \
           --out "${shard_dir}/t1.json" 2> /dev/null ||
       ! cmp -s "${shard_dir}/t1.json" "${shard_dir}/t1.orig.json"; then
      echo "--- cicmon shard resume: artifact was not reused" >&2
      failures=$((failures + 1))
    fi
  else
    echo "--- cicmon shard/merge: FAILED" >&2
    failures=$((failures + 1))
  fi
  rm -rf "${shard_dir}"
fi

# Telemetry A/B: collection is compiled in and always on, so the gate here
# is the *emission* path — a run with --trace + --metrics must render the
# same stdout bytes and stay within noise of the plain run. The wall-clock
# bound is deliberately generous (2x + 250 ms) because smoke-scale runs are
# milliseconds and scheduler jitter dominates; BENCH_PR9.json carries the
# honest full-scale overhead numbers.
telemetry_off_ms=0
telemetry_on_ms=0
if [[ -x ${build_dir}/cicmon ]]; then
  echo "--- cicmon telemetry A/B (trace off vs on)"
  telem_dir=$(mktemp -d)
  base="campaign --workload bitcount --scale 0.02 --trials 200"
  t0=$(date +%s%3N)
  ${build_dir}/cicmon ${base} 2> /dev/null > "${telem_dir}/off.txt"
  t1=$(date +%s%3N)
  ${build_dir}/cicmon ${base} --trace "${telem_dir}/trace.jsonl" --metrics json \
    2> /dev/null > "${telem_dir}/on.txt"
  t2=$(date +%s%3N)
  telemetry_off_ms=$((t1 - t0))
  telemetry_on_ms=$((t2 - t1))
  if ! diff "${telem_dir}/off.txt" "${telem_dir}/on.txt"; then
    echo "--- cicmon telemetry: --trace/--metrics moved stdout" >&2
    failures=$((failures + 1))
  elif [[ ! -s ${telem_dir}/trace.jsonl ]] ||
     ! grep -q '"schema":"cicmon-trace-v1"' "${telem_dir}/trace.jsonl"; then
    echo "--- cicmon telemetry: trace file missing or malformed" >&2
    failures=$((failures + 1))
  elif command -v python3 > /dev/null 2>&1 &&
     ! python3 "$(dirname "$0")/check_trace.py" "${telem_dir}/trace.jsonl" > /dev/null; then
    echo "--- cicmon telemetry: check_trace.py rejected the trace" >&2
    failures=$((failures + 1))
  elif [[ ${telemetry_on_ms} -gt $((telemetry_off_ms * 2 + 250)) ]]; then
    echo "--- cicmon telemetry: traced run took ${telemetry_on_ms} ms vs ${telemetry_off_ms} ms plain" >&2
    failures=$((failures + 1))
  else
    echo "    plain ${telemetry_off_ms} ms, traced ${telemetry_on_ms} ms"
  fi
  rm -rf "${telem_dir}"
fi

# Dispatch must reproduce the direct run byte for byte in every mode —
# persistent worker sessions with golden-state shipping (the default),
# sessions with shipping off (every worker derives locally), and the
# exec-per-shard fallback — and merge must accept the artifact directory.
# The wall-clock overhead vs the direct run is the dispatch tax; set
# CICMON_DISPATCH_BENCH_JSON=path to record all modes (the BENCH_PR8.json
# trajectory artifact; sessions amortise the per-shard spawn that dominated
# BENCH_PR4's exec numbers, and shipping removes the per-worker golden run
# that dominated BENCH_PR5's session numbers).
if [[ -x ${build_dir}/cicmon ]]; then
  echo "--- cicmon dispatch"
  dispatch_dir=$(mktemp -d)
  t0=$(date +%s%3N)
  "${build_dir}/cicmon" campaign --workload bitcount --scale 0.02 --trials 200 \
    2> /dev/null > "${dispatch_dir}/direct.txt"
  t1=$(date +%s%3N)
  "${build_dir}/cicmon" dispatch campaign --workload bitcount --scale 0.02 --trials 200 \
    --workers 3 --shards 7 --dir "${dispatch_dir}/shards" --quiet \
    2> "${dispatch_dir}/sessions.err" > "${dispatch_dir}/sessions.txt"
  t2=$(date +%s%3N)
  "${build_dir}/cicmon" dispatch campaign --workload bitcount --scale 0.02 --trials 200 \
    --workers 3 --shards 7 --dir "${dispatch_dir}/shards-noship" --ship-golden off --quiet \
    2> /dev/null > "${dispatch_dir}/noship.txt"
  t3=$(date +%s%3N)
  "${build_dir}/cicmon" dispatch campaign --workload bitcount --scale 0.02 --trials 200 \
    --workers 3 --shards 7 --dir "${dispatch_dir}/shards-exec" --exec-per-shard --quiet \
    2> /dev/null > "${dispatch_dir}/exec.txt"
  t4=$(date +%s%3N)
  direct_ms=$((t1 - t0))
  session_ms=$((t2 - t1))
  noship_ms=$((t3 - t2))
  exec_ms=$((t4 - t3))
  if ! diff "${dispatch_dir}/direct.txt" "${dispatch_dir}/sessions.txt" ||
     ! diff "${dispatch_dir}/direct.txt" "${dispatch_dir}/noship.txt" ||
     ! diff "${dispatch_dir}/direct.txt" "${dispatch_dir}/exec.txt" ||
     ! "${build_dir}/cicmon" merge "${dispatch_dir}/shards" > "${dispatch_dir}/merged.txt" ||
     ! diff "${dispatch_dir}/direct.txt" "${dispatch_dir}/merged.txt"; then
    echo "--- cicmon dispatch: output differs from the direct run" >&2
    failures=$((failures + 1))
  elif ! grep -q "shipped" "${dispatch_dir}/sessions.err"; then
    echo "--- cicmon dispatch: no worker took the golden shipment" >&2
    cat "${dispatch_dir}/sessions.err" >&2
    failures=$((failures + 1))
  else
    echo "    direct ${direct_ms} ms, sessions ${session_ms} ms (ship-golden off ${noship_ms} ms), exec-per-shard ${exec_ms} ms (3 workers, 7 shards)"
    if [[ -n ${CICMON_DISPATCH_BENCH_JSON:-} ]]; then
      printf '{\n  "schema": "cicmon-dispatch-bench-v4",\n  "command": "cicmon dispatch campaign --workload bitcount --scale 0.02 --trials 200 --workers 3 --shards 7",\n  "direct_ms": %s,\n  "session_ms": %s,\n  "session_noship_ms": %s,\n  "exec_ms": %s,\n  "telemetry_off_ms": %s,\n  "telemetry_on_ms": %s\n}\n' \
        "${direct_ms}" "${session_ms}" "${noship_ms}" "${exec_ms}" \
        "${telemetry_off_ms}" "${telemetry_on_ms}" > "${CICMON_DISPATCH_BENCH_JSON}"
    fi
  fi
  # The --dry-run plan must print the grid without creating anything.
  if ! "${build_dir}/cicmon" dispatch campaign --workload bitcount --scale 0.02 --trials 200 \
         --workers 3 --shards 7 --dir "${dispatch_dir}/never-created" --dry-run \
         | grep -q "persistent worker sessions" ||
     [[ -e ${dispatch_dir}/never-created ]]; then
    echo "--- cicmon dispatch --dry-run: launched or printed the wrong plan" >&2
    failures=$((failures + 1))
  fi
  rm -rf "${dispatch_dir}"
fi

# Examples double as API smoke tests.
run quickstart
run tamper_detection
run fault_campaign bitcount 40
run asip_design_flow
run custom_hash_asip

if [[ ${failures} -gt 0 ]]; then
  echo "smoke_bench: ${failures} binary(ies) failed" >&2
  exit 1
fi
echo "smoke_bench: all experiment binaries healthy at scale ${scale}"
